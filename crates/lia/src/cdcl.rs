//! An iterative CDCL(T) search engine for quantifier-free LIA.
//!
//! This is the clause-learning successor of the recursive "structural
//! DPLL(T)" in [`crate::solver`] (which is kept as a differential-testing
//! oracle).  The formula is clausified by [`crate::cnf`] into an
//! atom-indexed clause database; the search is the standard modern loop:
//!
//! * an **assignment trail** with decision levels and reason clauses,
//! * **two-watched-literal** Boolean constraint propagation,
//! * **1UIP conflict analysis** with clause learning and activity bumping,
//! * **non-chronological backjumping** to the second-highest level of the
//!   learned clause,
//! * **Luby restarts** and **VSIDS-style** activity-ordered decisions with
//!   phase saving.
//!
//! The engine is *persistent*: [`Engine::solve`] can be called repeatedly
//! on a growing clause database ([`Engine::add_root_clause`] /
//! [`Engine::grow_theory`]), under **assumptions** (literals enqueued as
//! pseudo-decisions before the search proper, the mechanism behind the
//! `push`/`pop` frames of [`crate::incremental`]).  Learned clauses, VSIDS
//! activities and saved phases survive across calls, and an LBD-ranked
//! learned-clause GC ([`Engine::reduce_db`], triggered at restarts) keeps
//! long sessions from growing unboundedly.  One-shot solving
//! ([`solve_cdcl`]) is the special case of a fresh engine and no
//! assumptions.
//!
//! The theory side is as incremental as the Boolean side (the full
//! DPLL(T) architecture of Dutertre & de Moura):
//!
//! * every assigned theory literal contributes one bound constraint (both
//!   polarities are exact over ℤ, see [`crate::cnf`]);
//! * at every propagation fixpoint that added theory literals, interval
//!   propagation ([`crate::bounds`]) checks the conjunction incrementally
//!   (a persistent [`ConstraintIndex`] kept in lock-step with the trail
//!   drives the worklist cascade), and the divisibility test
//!   ([`crate::eqelim`]) re-runs when the set of bound-pinned variables
//!   actually changed (pinning is monotone within a decision level, so the
//!   pinned-count is an exact change detector; a periodic re-run covers
//!   equality pairs that complete without new pinning).  Refutations are
//!   narrowed to a minimal core by [`crate::explain`] and learned as
//!   clauses, which is what prunes the symmetric K≥2 mismatch case splits
//!   of the tag-automaton encodings;
//! * after each consistent fixpoint, **theory propagation** scans the
//!   variables whose intervals tightened against the atom→bound registry
//!   (atoms grouped by constant-stripped form, sorted by threshold) and
//!   enqueues every entailed literal with a *lazy* explanation — the
//!   entailing bound core is only materialised if conflict analysis later
//!   resolves on the literal — so bound/parity conflicts are cut off
//!   levels early instead of being rediscovered as full conflicts
//!   (`SolverConfig::theory_propagation`, on by default);
//! * at the leaves (a full assignment, or every original clause already
//!   satisfied) a **persistent, backtrackable simplex**
//!   ([`crate::simplex::IncrementalSimplex`]) re-checks rational
//!   feasibility: atoms are registered once at [`Engine::grow_theory`],
//!   asserted literals become O(1) bound assertions kept in lock-step
//!   with the trail (retracted on backjump), and the pivot loop
//!   warm-starts from the previous basis — its Farkas certificate is the
//!   explanation.  Branch-and-bound ([`crate::intfeas`]) decides integer
//!   feasibility on its own push/pop tableau; integer-only conflicts are
//!   explained by budgeted deletion minimisation and learned.
//!
//! Soundness matches the structural engine: `Sat` carries a model the
//! caller can re-validate, `Unsat` is only reported when the search space
//! was exhausted without any resource-out — and, in a persistent session,
//! only while no search-heuristic blocking clause was ever learned (a
//! resource-out leaves the engine *tainted*: refutations from a tainted
//! database surface as `Unknown`).  Cancellation, conflict budgets and
//! integer resource-outs all surface as `Unknown`.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::LazyLock;

use crate::bounds::{BoundEnv, BoundOutcome, ConstraintIndex};
use crate::cnf::{constraint_of_meaning, split_meaning, Clausifier, Lit};
use crate::explain;
use crate::formula::Formula;
use crate::intfeas::{solve_integer_with_pivots, IntFeasResult};
use crate::proof::{farkas_coefficients, CertKind, ProofBuilder};
use crate::rational::Rat;
use crate::simplex::{
    check_feasibility, IncrementalSimplex, PreparedBound, Rel, SimplexConstraint,
};
use crate::solver::{Model, SolverConfig, SolverResult};
use crate::term::{LinExpr, Var};

/// Reason index of decisions and unassigned variables.
const NO_REASON: u32 = u32::MAX;

/// Approximate heap footprint of a clause of `len` literals, for the
/// memory-budget accounting (header + literal vector).
fn clause_bytes(len: usize) -> u64 {
    48 + 8 * len as u64
}

/// Reason index of theory-propagated literals: the explanation (a bound
/// core entailing the literal) is materialised *lazily*, only when the
/// literal is actually resolved on during conflict analysis.
const TPROP_REASON: u32 = u32::MAX - 1;

/// Restart interval base (conflicts), scaled by the Luby sequence.
const RESTART_BASE: u64 = 256;

/// Node budget of the integer checker during explanation minimisation
/// (failing to prove keeps the constraint — sound, just less minimal).
const EXPLAIN_INT_BUDGET: usize = 2_000;

/// Cores larger than this skip the (quadratic) deletion minimisation for
/// the expensive checkers; the unminimised core is still a sound clause.
const MINIMIZE_CAP: usize = 96;

/// Deletion attempts per conflict for the cheap (propagation-backed)
/// minimisers: the deepest members are tried first, so the budget buys the
/// backjump-relevant part of minimality at a bounded per-conflict cost.
const MINIMIZE_BUDGET: usize = 8;

/// The divisibility test re-runs at every fixpoint where the pinned-variable
/// set changed, and unconditionally every this-many bound checks (equality
/// pairs can complete without pinning anything new).
const GCD_PERIOD: u64 = 8;

/// Learned clauses this short are never garbage-collected (binary lemmas
/// cost next to nothing to keep and propagate eagerly).
const GC_EXEMPT_LEN: usize = 2;

/// The assignment-guided scan skips tableau rows longer than this: the
/// implied-bound sum is linear in the row, and a row this wide almost
/// never has every nonbasic bounded on the needed side anyway.  This is
/// the *starting* cap — the engine adapts it between
/// [`GUIDED_ROW_CAP_MIN`] and [`GUIDED_ROW_CAP_MAX`] by observed payoff.
const GUIDED_ROW_CAP: usize = 128;
const GUIDED_ROW_CAP_MIN: usize = 32;
const GUIDED_ROW_CAP_MAX: usize = 512;

/// Pivot budget of the *eager* simplex check behind guided propagation: a
/// warm-started re-check normally needs zero or a handful of pivots, and
/// that is the only case worth paying for early — when the budget runs out
/// the check is abandoned (resumably) and the leaf check finishes the work.
/// Also a starting value, adapted between [`GUIDED_PIVOT_BUDGET_MIN`] and
/// [`GUIDED_PIVOT_BUDGET_MAX`].
const GUIDED_PIVOT_BUDGET: u64 = 16;
const GUIDED_PIVOT_BUDGET_MIN: u64 = 4;
const GUIDED_PIVOT_BUDGET_MAX: u64 = 64;

/// Consecutive payoff observations (budget exhaustions, or scans that
/// entailed a literal) before the guided budgets move one step.
const GUIDED_ADAPT_STREAK: u32 = 3;

/// Times the guided budgets were doubled after a productive streak.
static OBS_GUIDED_RAISED: LazyLock<posr_obs::Counter> =
    LazyLock::new(|| posr_obs::counter("cdcl.guided_budget_raised"));

/// Times the guided budgets were halved after repeated exhaustion.
static OBS_GUIDED_LOWERED: LazyLock<posr_obs::Counter> =
    LazyLock::new(|| posr_obs::counter("cdcl.guided_budget_lowered"));

/// Distribution of pivots per simplex `check()` (leaf and guided).
static HIST_CHECK_PIVOTS: LazyLock<posr_obs::Histogram> =
    LazyLock::new(|| posr_obs::histogram("simplex.check_pivots"));

/// Distribution of learned-clause LBD scores.
static HIST_LBD: LazyLock<posr_obs::Histogram> = LazyLock::new(|| posr_obs::histogram("cdcl.lbd"));

// The stall watchdog's progress probe: store-latest gauges the search
// loop publishes with relaxed stores so the (separate) watchdog thread
// can report where a wedged solve got to without taking any lock the
// solver holds.  In a portfolio the lanes share these — latest writer
// wins, which is what a "current progress" probe means.
static PROGRESS_CONFLICTS: LazyLock<posr_obs::Gauge> =
    LazyLock::new(|| posr_obs::gauge("cdcl.conflicts"));
static PROGRESS_DECISIONS: LazyLock<posr_obs::Gauge> =
    LazyLock::new(|| posr_obs::gauge("cdcl.decisions"));
static PROGRESS_TRAIL: LazyLock<posr_obs::Gauge> =
    LazyLock::new(|| posr_obs::gauge("cdcl.trail_depth"));
static PROGRESS_PIVOTS: LazyLock<posr_obs::Gauge> =
    LazyLock::new(|| posr_obs::gauge("simplex.pivots"));

/// Pivots between cancellation polls in a *leaf* simplex check.  On
/// product tableaux with hundreds of rows a single check can run for
/// seconds — far past the search loop's per-iteration deadline poll — so
/// the unbounded check is sliced into resumable budget windows.  Large
/// enough that the slicing is free on normal instances (warm-started
/// checks rarely reach double digits).
const LEAF_CANCEL_SLICE: u64 = 4096;

/// Cumulative counters of a CDCL(T) engine (one search or a whole
/// incremental session — the counters never reset between
/// [`Engine::solve`] calls).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts resolved (clause learning events).
    pub conflicts: u64,
    /// VSIDS decisions taken (assumption enqueues excluded).
    pub decisions: u64,
    /// Literals enqueued by unit propagation.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learned over the engine's lifetime.
    pub learned_total: u64,
    /// Learned clauses currently in the database.
    pub learned_live: u64,
    /// Learned clauses dropped by the LBD-ranked GC.
    pub gc_dropped: u64,
    /// Theory fixpoint checks (bound propagation).
    pub bound_checks: u64,
    /// Divisibility (GCD) checks actually run.
    pub gcd_checks: u64,
    /// Simplex feasibility checks at leaves.
    pub simplex_checks: u64,
    /// Exact integer checks at leaves.
    pub final_checks: u64,
    /// Theory-propagated literals (bound-entailed atoms enqueued instead
    /// of being rediscovered as conflicts).
    pub theory_props: u64,
    /// Structural simplex pivots across all leaf checks — the rational
    /// feasibility checks *and* the branch-and-bound of the integer
    /// leaves (the incremental tableaux warm-start, so this is the
    /// direct measure of what the persistent bases save over per-check
    /// reconstruction).  Derived from the `obs` pivot counter through a
    /// [`posr_obs::CounterScope`] attached for the engine's lifetime, so
    /// this and `simplex.pivots` cannot drift.
    pub simplex_pivots: u64,
    /// Tableau rows actually visited by pivot/update loops (the
    /// occurrence-indexed cost); the dense layout would have scanned the
    /// whole row set each time.  Derived from the `obs` row-touch counter
    /// like `simplex_pivots`.
    pub row_touches: u64,
    /// The subset of `theory_props` enqueued by the assignment-guided
    /// tableau scan (multi-variable atoms the interval scan cannot see).
    pub tprop_entailed: u64,
}

impl SolverStats {
    /// The counter movement since `earlier` (field-wise saturating
    /// subtraction; `learned_live` is a gauge, not a counter, and is kept
    /// as-is).  This is how consumers of [`global_stats`] report "what my
    /// section did" without resetting the process-wide totals.
    pub fn since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            learned_total: self.learned_total.saturating_sub(earlier.learned_total),
            learned_live: self.learned_live,
            gc_dropped: self.gc_dropped.saturating_sub(earlier.gc_dropped),
            bound_checks: self.bound_checks.saturating_sub(earlier.bound_checks),
            gcd_checks: self.gcd_checks.saturating_sub(earlier.gcd_checks),
            simplex_checks: self.simplex_checks.saturating_sub(earlier.simplex_checks),
            final_checks: self.final_checks.saturating_sub(earlier.final_checks),
            theory_props: self.theory_props.saturating_sub(earlier.theory_props),
            simplex_pivots: self.simplex_pivots.saturating_sub(earlier.simplex_pivots),
            row_touches: self.row_touches.saturating_sub(earlier.row_touches),
            tprop_entailed: self.tprop_entailed.saturating_sub(earlier.tprop_entailed),
        }
    }
}

/// Process-wide accumulation of every engine's counters, flushed at the end
/// of each [`Engine::solve`]; `examples/portfolio.rs --stats` reads it.
static GLOBAL_CONFLICTS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_DECISIONS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_PROPAGATIONS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_RESTARTS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_LEARNED: AtomicU64 = AtomicU64::new(0);
static GLOBAL_GC_DROPPED: AtomicU64 = AtomicU64::new(0);
static GLOBAL_BOUND_CHECKS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_GCD_CHECKS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_SIMPLEX_CHECKS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_FINAL_CHECKS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_THEORY_PROPS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_SIMPLEX_PIVOTS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_ROW_TOUCHES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_TPROP_ENTAILED: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide cumulative CDCL counters (all engines,
/// all threads, since process start).
pub fn global_stats() -> SolverStats {
    SolverStats {
        conflicts: GLOBAL_CONFLICTS.load(Ordering::Relaxed),
        decisions: GLOBAL_DECISIONS.load(Ordering::Relaxed),
        propagations: GLOBAL_PROPAGATIONS.load(Ordering::Relaxed),
        restarts: GLOBAL_RESTARTS.load(Ordering::Relaxed),
        learned_total: GLOBAL_LEARNED.load(Ordering::Relaxed),
        learned_live: 0,
        gc_dropped: GLOBAL_GC_DROPPED.load(Ordering::Relaxed),
        bound_checks: GLOBAL_BOUND_CHECKS.load(Ordering::Relaxed),
        gcd_checks: GLOBAL_GCD_CHECKS.load(Ordering::Relaxed),
        simplex_checks: GLOBAL_SIMPLEX_CHECKS.load(Ordering::Relaxed),
        final_checks: GLOBAL_FINAL_CHECKS.load(Ordering::Relaxed),
        theory_props: GLOBAL_THEORY_PROPS.load(Ordering::Relaxed),
        simplex_pivots: GLOBAL_SIMPLEX_PIVOTS.load(Ordering::Relaxed),
        row_touches: GLOBAL_ROW_TOUCHES.load(Ordering::Relaxed),
        tprop_entailed: GLOBAL_TPROP_ENTAILED.load(Ordering::Relaxed),
    }
}

/// Decides a quantifier-free NNF formula with the CDCL(T) engine.
pub fn solve_cdcl(nnf: &Formula, config: &SolverConfig) -> SolverResult {
    solve_cdcl_with_proof(nnf, config).0
}

/// [`solve_cdcl`] variant that also returns the serialized proof document
/// when `SolverConfig::proof_logging` is on.  The document is meaningful
/// for `Unsat` answers (it ends in a `final` step an independent replayer
/// can verify); for other answers it is just the log so far.
pub fn solve_cdcl_with_proof(
    nnf: &Formula,
    config: &SolverConfig,
) -> (SolverResult, Option<String>) {
    let cnf = Clausifier::clausify(nnf);
    if cnf.unsat {
        // the clausifier itself refuted the input (e.g. a false constant
        // constraint): the proof is one empty root clause
        let doc = config.proof_logging.then(|| {
            let mut p = ProofBuilder::new();
            p.root(Vec::new());
            p.query();
            p.finish(0);
            p.serialize()
        });
        return (SolverResult::Unsat, doc);
    }
    let mut engine = Engine::empty(config.clone());
    engine.grow_theory(&cnf.theory);
    for lits in cnf.clauses {
        engine.add_root_clause(lits);
    }
    let result = engine.solve(&[]);
    let doc = engine.proof().map(|p| p.serialize());
    (result, doc)
}

struct Clause {
    lits: Vec<Lit>,
    /// Learned (implied) clauses are excluded from the early-Sat check and
    /// are the GC's candidates.
    learnt: bool,
    /// Literal-block distance at learning time (0 for original clauses).
    lbd: u32,
    /// Stable id of this clause in the proof log (0 when logging is off).
    /// Strengthening keeps the id: the removed literals are root-false, so
    /// a replayer using the logged (longer) clause reaches the same units.
    proof_id: u64,
}

/// Everything the theory layer must restore on backjump, snapshotted per
/// decision level so no fixpoint is ever recomputed from scratch.
#[derive(Clone)]
struct TheorySnapshot {
    checked: usize,
    env: BoundEnv,
    gcd_fixed: usize,
}

/// The atoms of one constant-stripped linear form, sorted by threshold:
/// entry `(k, b)` means Boolean variable `b` asserts `form + k ≤ 0`.
/// Given the current interval `[min, max]` of `form`, the entailed-true
/// atoms are the prefix `k ≤ −max` and the entailed-false ones the suffix
/// `k ≥ 1 − min` — two binary-searchable runs.
#[derive(Default)]
struct FormAtoms {
    expr: LinExpr,
    atoms: Vec<(i128, usize)>,
}

/// The atom→bound registry driving theory propagation: every theory atom,
/// grouped by its constant-stripped form and sorted by threshold, plus a
/// variable→forms index so a bound-fixpoint only rescans the forms whose
/// variables actually tightened.
#[derive(Default)]
struct AtomTable {
    by_form: HashMap<LinExpr, usize>,
    forms: Vec<FormAtoms>,
    by_var: BTreeMap<Var, Vec<usize>>,
    /// Scan stamps (one slot per form) deduplicating the per-fixpoint
    /// form worklist without clearing a bitmap.
    stamps: Vec<u64>,
    cur_stamp: u64,
}

impl AtomTable {
    /// Registers the atom `var ⟺ (meaning ≤ 0)`.
    fn register(&mut self, var: usize, meaning: &LinExpr) {
        let (form, k) = split_meaning(meaning);
        let fi = match self.by_form.get(&form) {
            Some(&fi) => fi,
            None => {
                let fi = self.forms.len();
                for v in form.variables() {
                    self.by_var.entry(v).or_default().push(fi);
                }
                self.forms.push(FormAtoms {
                    expr: form.clone(),
                    atoms: Vec::new(),
                });
                self.stamps.push(0);
                self.by_form.insert(form, fi);
                fi
            }
        };
        let atoms = &mut self.forms[fi].atoms;
        let pos = atoms.partition_point(|&(key, _)| key < k);
        atoms.insert(pos, (k, var));
    }
}

/// The registered atoms constraining one tableau column, keyed for the
/// assignment-guided scan: `upper` holds `(hi, lit)` pairs — asserting
/// `lit` bounds the owner above by `hi` — sorted ascending by `hi`;
/// `lower` holds `(lo, lit)` pairs sorted ascending by `lo`.  The feasible
/// assignment β prunes both lists to the candidate run before any row sum
/// is computed (β ≤ implied-upper and implied-lower ≤ β always hold after
/// a consistent check, so atoms β already violates cannot be entailed).
#[derive(Default)]
struct GuidedAtoms {
    upper: Vec<(Rat, Lit)>,
    lower: Vec<(Rat, Lit)>,
}

pub(crate) struct Engine {
    config: SolverConfig,
    clauses: Vec<Clause>,
    /// Indices of the non-learned clauses (maintained by `attach` and
    /// rebuilt by `reduce_db`), so the early-Sat check scans only the
    /// originals instead of filtering the whole database per fixpoint.
    originals: Vec<u32>,
    /// `watches[lit.code()]`: indices of clauses currently watching `lit`.
    watches: Vec<Vec<u32>>,
    /// Assignment per variable: 0 unassigned, 1 true, -1 false.
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// Per-literal theory constraint (extended by [`Engine::grow_theory`]).
    lit_constraint: Vec<Option<SimplexConstraint>>,
    /// Constraints of the assigned theory literals, in trail order.
    theory_stack: Vec<SimplexConstraint>,
    /// The literals the `theory_stack` entries came from (parallel).
    theory_lits: Vec<Lit>,
    /// Variable → constraint dependency index, kept in lock-step with
    /// `theory_stack` (pushed on enqueue, popped on backjump) so the
    /// worklist propagation never rebuilds it.
    theory_index: ConstraintIndex,
    /// Per-literal pre-compiled simplex bound (owner variable + normalised
    /// bound), computed once at [`Engine::grow_theory`] so asserting into
    /// the persistent tableau is a constant-time trail operation.
    lit_prepared: Vec<Option<PreparedBound>>,
    /// The persistent Dutertre–de Moura tableau: atoms registered at
    /// `grow_theory`, bounds asserted in lock-step with `theory_stack`
    /// (lazily, at leaf checks — `simplex.num_asserted()` is the synced
    /// prefix length), retracted on backjump, basis warm across the whole
    /// session.
    simplex: IncrementalSimplex,
    /// The atom→bound registry of theory propagation.
    atom_table: AtomTable,
    /// Per Boolean variable: the `theory_stack` length at the moment the
    /// variable was theory-propagated — the prefix its lazy explanation is
    /// drawn from.  Only meaningful while `reason[var] == TPROP_REASON`.
    tprop_mark: Vec<usize>,
    /// Per Boolean variable: the theory-stack tags of the asserted bounds
    /// whose tableau row entailed an assignment-*guided* propagation, or
    /// `None` when the literal came from the interval scan.  Only
    /// meaningful while `reason[var] == TPROP_REASON`.
    tprop_guided: Vec<Option<Vec<u32>>>,
    /// Multi-variable atoms indexed by owning slack column, for the
    /// assignment-guided scan after each consistent eager simplex check
    /// (single-variable owners are already covered by the interval scan).
    guided: BTreeMap<usize, GuidedAtoms>,
    /// Registered columns whose implied bounds may have moved since the
    /// last guided scan (owners of newly asserted bounds plus the basics
    /// whose rows contain them); the scan visits only these unless the
    /// check pivoted (pivots restructure rows arbitrarily).
    guided_dirty: Vec<usize>,
    /// Adaptive pivot budget of the eager guided check: starts at
    /// [`GUIDED_PIVOT_BUDGET`], doubled after [`GUIDED_ADAPT_STREAK`]
    /// consecutive productive scans, halved after as many consecutive
    /// budget exhaustions.
    guided_pivot_budget: u64,
    /// Adaptive row cap of the guided implied-bound scan; moves in
    /// lock-step with `guided_pivot_budget`.
    guided_row_cap: usize,
    /// Consecutive guided checks whose pivot budget ran out.
    guided_exhausted_streak: u32,
    /// Consecutive guided scans that entailed at least one literal.
    guided_productive_streak: u32,
    /// Collects the `obs` pivot/row-touch increments made on this engine's
    /// solving thread; `SolverStats::simplex_pivots` and `row_touches` are
    /// *derived* from it, so the two accountings cannot drift.
    pivot_scope: posr_obs::CounterScope,
    /// Prefix length of `theory_stack` known bound- and GCD-consistent.
    theory_checked: usize,
    /// Interval environment of `theory_stack[..theory_checked]`, updated
    /// incrementally as the trail grows.
    cur_env: BoundEnv,
    /// Number of bound-pinned variables at the last divisibility check
    /// (pinning is monotone within a level, so a changed count is an exact
    /// "the substitution changed" detector).
    gcd_fixed_count: usize,
    /// Per decision level: the theory state at decision time, restored on
    /// backjump.
    env_snapshots: Vec<TheorySnapshot>,
    /// Prefix length known rationally feasible.
    simplex_checked: usize,
    // VSIDS
    activity: Vec<f64>,
    var_inc: f64,
    heap: VarHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    /// Assumption literals of the current `solve` call, enqueued as
    /// pseudo-decisions at levels `1..=assumptions.len()`.
    assumptions: Vec<Lit>,
    stats: SolverStats,
    /// The portion of `stats` already flushed to the global accumulator.
    flushed: SolverStats,
    /// GC threshold on live learned clauses; grows geometrically.
    max_learnts: usize,
    /// An empty clause was derived at the root: permanently unsatisfiable.
    root_unsat: bool,
    /// A search-heuristic blocking clause (integer resource-out) entered
    /// the database: refutations are no longer trustworthy.
    tainted: bool,
    /// Conflict count at the start of the current `solve` call (the
    /// per-call budget baseline).
    solve_base_conflicts: u64,
    saw_resource_out: bool,
    cancelled: bool,
    bound_time: std::time::Duration,
    gcd_time: std::time::Duration,
    simplex_time: std::time::Duration,
    explain_time: std::time::Duration,
    trace: bool,
    /// The proof log (`SolverConfig::proof_logging`); `None` = logging off.
    proof: Option<ProofBuilder>,
    /// Proof id to name in the `final` step of an Unsat answer: the derived
    /// empty clause or the assumption-core clause (0 = the root-level
    /// conflict a replayer finds by propagation alone).
    last_final_id: u64,
    /// After an Unsat answer: the subset of the `solve` call's assumptions
    /// refuted by the database (empty when the database itself is unsat).
    last_core: Option<Vec<Lit>>,
}

enum Step {
    /// A conflicting set of currently-false literals, paired with the
    /// proof id of the clause/lemma stating it (0 when logging is off).
    Conflict(Vec<Lit>, u64),
    Ok,
}

impl Engine {
    /// An engine over an empty clause database.
    pub(crate) fn empty(config: SolverConfig) -> Engine {
        let max_learnts = config.learnt_cap.max(1);
        let proof = config.proof_logging.then(ProofBuilder::new);
        Engine {
            config,
            clauses: Vec::new(),
            originals: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            lit_constraint: Vec::new(),
            theory_stack: Vec::new(),
            theory_lits: Vec::new(),
            theory_index: ConstraintIndex::default(),
            lit_prepared: Vec::new(),
            simplex: IncrementalSimplex::new(),
            atom_table: AtomTable::default(),
            tprop_mark: Vec::new(),
            tprop_guided: Vec::new(),
            guided: BTreeMap::new(),
            guided_dirty: Vec::new(),
            guided_pivot_budget: GUIDED_PIVOT_BUDGET,
            guided_row_cap: GUIDED_ROW_CAP,
            guided_exhausted_streak: 0,
            guided_productive_streak: 0,
            pivot_scope: posr_obs::CounterScope::new(),
            theory_checked: 0,
            cur_env: BoundEnv::new(),
            gcd_fixed_count: 0,
            env_snapshots: Vec::new(),
            simplex_checked: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: VarHeap::new(0),
            phase: Vec::new(),
            seen: Vec::new(),
            assumptions: Vec::new(),
            stats: SolverStats::default(),
            flushed: SolverStats::default(),
            max_learnts,
            root_unsat: false,
            tainted: false,
            solve_base_conflicts: 0,
            saw_resource_out: false,
            cancelled: false,
            bound_time: std::time::Duration::ZERO,
            gcd_time: std::time::Duration::ZERO,
            simplex_time: std::time::Duration::ZERO,
            explain_time: std::time::Duration::ZERO,
            trace: std::env::var_os("POSR_CDCL_STATS").is_some(),
            proof,
            last_final_id: 0,
            last_core: None,
        }
    }

    /// The proof log, when `SolverConfig::proof_logging` is on.
    pub(crate) fn proof(&self) -> Option<&ProofBuilder> {
        self.proof.as_ref()
    }

    /// The unsat core of the last `solve` call: the subset of its
    /// assumptions refuted by the database (empty when the database is
    /// unsatisfiable regardless of assumptions).  `None` unless the last
    /// call answered `Unsat`.
    pub(crate) fn last_core(&self) -> Option<&[Lit]> {
        self.last_core.as_deref()
    }

    /// Logs a theory lemma; returns its proof id (0 when logging is off).
    fn log_lemma(&mut self, lits: &[Lit], kind: CertKind) -> u64 {
        match &mut self.proof {
            Some(p) => p.lemma(lits.to_vec(), kind),
            None => 0,
        }
    }

    /// Marks the proof incomplete (no-op when logging is off).
    fn proof_incomplete(&mut self, reason: &str) {
        if let Some(p) = &mut self.proof {
            p.mark_incomplete(reason);
        }
    }

    /// Extends the variable tables to cover `theory` (the clausifier's
    /// per-variable meanings; existing entries must be unchanged).
    ///
    /// `initial phase `true`: deciding a gate true drives its
    /// Plaisted–Greenbaum definition towards satisfaction, which is what
    /// the early-Sat check needs; phase saving adapts from there.
    pub(crate) fn grow_theory(&mut self, theory: &[Option<LinExpr>]) {
        let old = self.assign.len();
        debug_assert!(theory.len() >= old);
        for (var, meaning) in theory.iter().enumerate().skip(old) {
            let meaning = meaning.as_ref();
            let pos = constraint_of_meaning(meaning, true);
            let neg = constraint_of_meaning(meaning, false);
            // register the atom once: pre-compile both polarities against
            // the persistent tableau (creating the owning column/slack)
            // and index the atom for theory propagation — each gated on
            // its switch so the oracle/baseline configurations measure
            // the genuine PR-4 path, not registration they never use
            if self.config.incremental_simplex {
                let pos_prep = pos.as_ref().map(|c| self.simplex.prepare(c));
                let neg_prep = neg.as_ref().map(|c| self.simplex.prepare(c));
                if self.config.theory_propagation {
                    self.register_guided(Lit::positive(var), pos_prep.as_ref());
                    self.register_guided(Lit::negative(var), neg_prep.as_ref());
                }
                self.lit_prepared.push(pos_prep);
                self.lit_prepared.push(neg_prep);
            } else {
                self.lit_prepared.push(None);
                self.lit_prepared.push(None);
            }
            if self.config.theory_propagation {
                if let Some(meaning) = meaning {
                    self.atom_table.register(var, meaning);
                }
            }
            if let Some(p) = &mut self.proof {
                if let Some(meaning) = meaning {
                    p.atom(var, meaning);
                }
            }
            self.lit_constraint.push(pos);
            self.lit_constraint.push(neg);
            self.watches.push(Vec::new());
            self.watches.push(Vec::new());
            self.assign.push(0);
            self.level.push(0);
            self.reason.push(NO_REASON);
            self.activity.push(0.0);
            self.phase.push(true);
            self.seen.push(false);
            self.tprop_mark.push(0);
            self.tprop_guided.push(None);
            self.heap.grow(var, &self.activity);
        }
    }

    /// Indexes a prepared atom for the assignment-guided scan when its
    /// owner is a slack column (a multi-variable form): the interval scan
    /// already entails everything a single-variable owner can, so the
    /// guided pass contributes exactly the row-entailed atoms the interval
    /// scan cannot see.
    fn register_guided(&mut self, lit: Lit, prepared: Option<&PreparedBound>) {
        let Some(p) = prepared else { return };
        let Some(col) = p.tableau_owner() else { return };
        if !self.simplex.is_slack(col) {
            return;
        }
        let g = self.guided.entry(col).or_default();
        if let Some(hi) = p.hi() {
            let at = g.upper.partition_point(|(v, _)| *v < hi);
            g.upper.insert(at, (hi, lit));
        }
        if let Some(lo) = p.lo() {
            let at = g.lower.partition_point(|(v, _)| *v <= lo);
            g.lower.insert(at, (lo, lit));
        }
    }

    /// Adds a clause at the root level: normalises (duplicate and
    /// tautology elimination), drops root-satisfied clauses, strengthens
    /// away root-false literals, and handles the unit/empty cases.
    ///
    /// # Panics
    /// Panics (in debug builds) when called above decision level 0; the
    /// incremental layer only asserts between solves.
    pub(crate) fn add_root_clause(&mut self, mut lits: Vec<Lit>) {
        debug_assert_eq!(self.decision_level(), 0);
        lits.sort_unstable();
        lits.dedup();
        for pair in lits.windows(2) {
            if pair[0].var() == pair[1].var() {
                return; // l ∨ ¬l: tautology
            }
        }
        // every non-tautological input clause is logged as stated, before
        // the root-trail simplifications: the proof's axioms must match
        // the clauses the caller asserted, not their strengthened forms
        let pid = match &mut self.proof {
            Some(p) => p.root(lits.clone()),
            None => 0,
        };
        // at level 0 every assignment is permanent, so satisfied clauses
        // are dropped and false literals removed (both sound)
        if lits.iter().any(|&l| self.value(l) == 1) {
            return;
        }
        lits.retain(|&l| self.value(l) == 0);
        match lits.len() {
            0 => {
                self.root_unsat = true;
                self.last_final_id = 0;
            }
            1 => {
                if !self.enqueue_root(lits[0]) {
                    self.root_unsat = true;
                    self.last_final_id = 0;
                }
            }
            _ => {
                self.attach(Clause {
                    lits,
                    learnt: false,
                    lbd: 0,
                    proof_id: pid,
                });
            }
        }
    }

    /// Cumulative counters (never reset across `solve` calls).
    /// `simplex_pivots` and `row_touches` are derived from the engine's
    /// counter scope — the tableaux count in one place ([`IncrementalSimplex`]
    /// flushes into the `obs` counters) and this is the only other reader,
    /// so the two views cannot drift.
    pub(crate) fn stats(&self) -> SolverStats {
        let mut stats = self.stats;
        stats.learned_live = self.clauses.iter().filter(|c| c.learnt).count() as u64;
        stats.simplex_pivots = self.pivot_scope.get(crate::simplex::obs_pivot_counter());
        stats.row_touches = self
            .pivot_scope
            .get(crate::simplex::obs_row_touch_counter());
        stats
    }

    /// `true` when every *original* clause has a true literal: the
    /// remaining unassigned variables are don't-cares, so the current
    /// theory conjunction already decides the formula (learned clauses are
    /// implied and need not be consulted).  This is what lets satisfiable
    /// encodings finish without enumerating the thousands of irrelevant
    /// gate variables.
    fn original_clauses_satisfied(&self) -> bool {
        self.originals
            .iter()
            .map(|&i| &self.clauses[i as usize])
            .all(|c| c.lits.iter().any(|&l| self.value(l) == 1))
    }

    fn value(&self, lit: Lit) -> i8 {
        let a = self.assign[lit.var()];
        if lit.is_positive() {
            a
        } else {
            -a
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn attach(&mut self, clause: Clause) -> u32 {
        debug_assert!(clause.lits.len() >= 2);
        let idx = self.clauses.len() as u32;
        self.watches[clause.lits[0].code()].push(idx);
        self.watches[clause.lits[1].code()].push(idx);
        if !clause.learnt {
            self.originals.push(idx);
        }
        self.clauses.push(clause);
        idx
    }

    /// Enqueues a root-level literal; `false` on immediate contradiction.
    fn enqueue_root(&mut self, lit: Lit) -> bool {
        match self.value(lit) {
            1 => true,
            -1 => false,
            _ => {
                self.enqueue(lit, NO_REASON);
                true
            }
        }
    }

    fn enqueue(&mut self, lit: Lit, reason: u32) {
        debug_assert_eq!(self.value(lit), 0);
        let var = lit.var();
        self.assign[var] = if lit.is_positive() { 1 } else { -1 };
        self.level[var] = self.decision_level();
        self.reason[var] = reason;
        self.trail.push(lit);
        if let Some(c) = &self.lit_constraint[lit.code()] {
            self.theory_index.push(c);
            self.theory_stack.push(c.clone());
            self.theory_lits.push(lit);
        }
    }

    /// Backtracks to `target` decision level, saving phases.
    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let keep = self.trail_lim[target as usize];
        for i in (keep..self.trail.len()).rev() {
            let lit = self.trail[i];
            let var = lit.var();
            self.phase[var] = lit.is_positive();
            self.assign[var] = 0;
            self.reason[var] = NO_REASON;
            self.heap.insert(var, &self.activity);
            if self.lit_constraint[lit.code()].is_some() {
                let c = self.theory_stack.pop().expect("parallel stacks");
                self.theory_index.pop(&c);
                self.theory_lits.pop();
            }
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(target as usize);
        self.qhead = keep;
        let snapshot = self.env_snapshots[target as usize].clone();
        self.env_snapshots.truncate(target as usize);
        self.theory_checked = snapshot.checked;
        self.cur_env = snapshot.env;
        self.gcd_fixed_count = snapshot.gcd_fixed;
        self.simplex_checked = self.simplex_checked.min(self.theory_stack.len());
        // retract the bounds of the popped theory literals; only relaxes
        // intervals, so the warm basis and assignment stay valid
        self.simplex.retract_to(self.theory_stack.len());
    }

    fn new_decision_level(&mut self) {
        self.env_snapshots.push(TheorySnapshot {
            checked: self.theory_checked,
            env: self.cur_env.clone(),
            gcd_fixed: self.gcd_fixed_count,
        });
        self.trail_lim.push(self.trail.len());
    }

    /// Two-watched-literal propagation to fixpoint.
    fn propagate(&mut self) -> Step {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let np = p.negate(); // this literal just became false
            let mut ws = std::mem::take(&mut self.watches[np.code()]);
            let mut i = 0;
            'clauses: while i < ws.len() {
                let ci = ws[i] as usize;
                // normalise: the false watch sits at position 1
                if self.clauses[ci].lits[0] == np {
                    self.clauses[ci].lits.swap(0, 1);
                }
                let first = self.clauses[ci].lits[0];
                if self.value(first) == 1 {
                    i += 1;
                    continue;
                }
                for k in 2..self.clauses[ci].lits.len() {
                    if self.value(self.clauses[ci].lits[k]) != -1 {
                        self.clauses[ci].lits.swap(1, k);
                        let new_watch = self.clauses[ci].lits[1];
                        self.watches[new_watch.code()].push(ws[i]);
                        ws.swap_remove(i);
                        continue 'clauses;
                    }
                }
                // no replacement: unit or conflict
                if self.value(first) == -1 {
                    let conflict = self.clauses[ci].lits.clone();
                    let pid = self.clauses[ci].proof_id;
                    self.watches[np.code()] = ws;
                    self.qhead = self.trail.len();
                    return Step::Conflict(conflict, pid);
                }
                self.stats.propagations += 1;
                self.enqueue(first, ws[i]);
                i += 1;
            }
            self.watches[np.code()] = ws;
        }
        Step::Ok
    }

    /// Checks the theory at a propagation fixpoint: *incremental* interval
    /// propagation of the constraints asserted since the last check (the
    /// worklist cascade of [`BoundEnv::propagate`] re-fires only the
    /// context constraints whose variables actually tightened, walking the
    /// persistent `theory_index`), then the divisibility test — but only
    /// when the set of bound-pinned variables changed since the last run
    /// (or periodically, for equality pairs that complete without new
    /// pinning) — each with a tracked/minimised explanation on refutation.
    /// On backjump the environment is restored from the decision-level
    /// snapshot, so no fixpoint is ever recomputed from scratch.
    fn theory_check(&mut self) -> Step {
        if self.theory_stack.len() <= self.theory_checked {
            return Step::Ok;
        }
        self.stats.bound_checks += 1;
        let t0 = std::time::Instant::now();
        let extra = self.theory_stack[self.theory_checked..].to_vec();
        let budget = 32 * self.theory_stack.len().max(8);
        let mut env = std::mem::take(&mut self.cur_env);
        let mut changed: Vec<Var> = Vec::new();
        let outcome = env.propagate_into(
            &extra,
            &self.theory_stack,
            &self.theory_index,
            budget,
            &mut changed,
        );
        self.cur_env = env;
        self.bound_time += t0.elapsed();
        if outcome == BoundOutcome::Refuted {
            let t0 = std::time::Instant::now();
            let core = match explain::bound_conflict_core(&self.theory_stack) {
                Some(core) => core,
                None => {
                    self.proof_incomplete("bound conflict without a tracked core");
                    (0..self.theory_stack.len()).collect()
                }
            };
            let core = if core.len() <= MINIMIZE_CAP {
                // the *checker* need not track provenance — it only has to
                // prove subsets infeasible — so the cheap untracked
                // propagation replaces the tracked one of the initial pass
                explain::minimize_core_budgeted(
                    &self.theory_stack,
                    core,
                    &explain::bound_infeasible,
                    MINIMIZE_BUDGET,
                )
            } else {
                core
            };
            self.explain_time += t0.elapsed();
            let conflict = self.core_to_conflict(&core);
            let pid = self.log_lemma(&conflict, CertKind::Bounds);
            return Step::Conflict(conflict, pid);
        }
        let pinned = self.cur_env.pinned_count();
        let run_gcd =
            pinned != self.gcd_fixed_count || self.stats.bound_checks.is_multiple_of(GCD_PERIOD);
        if !run_gcd {
            self.theory_checked = self.theory_stack.len();
            self.theory_propagate(&changed);
            return Step::Ok;
        }
        let step = self.gcd_check();
        match step {
            Step::Ok => {
                self.gcd_fixed_count = pinned;
                self.theory_checked = self.theory_stack.len();
                self.theory_propagate(&changed);
                Step::Ok
            }
            conflict => conflict,
        }
    }

    /// Assignment-guided theory propagation at the propagation fixpoint
    /// *before a decision* (not at every intermediate theory check — the
    /// eager simplex runs once per decision point, when its verdict can
    /// still preempt the decision): runs the persistent simplex and, when
    /// feasible, scans the registered multi-variable atoms against the
    /// bounds the tableau rows imply — enqueueing the entailed ones
    /// through the [`TPROP_REASON`] path.  The check itself is the
    /// warm-start case the persistent tableau makes cheap (a handful of
    /// bound assertions, usually zero pivots), and a conflict it finds
    /// here is one the leaf would otherwise rediscover a subtree later.
    fn guided_step(&mut self) -> Step {
        if !self.config.guided_propagation
            || !self.config.incremental_simplex
            || !self.config.theory_propagation
            || self.guided.is_empty()
            || self.theory_stack.len() <= self.simplex_checked
        {
            return Step::Ok;
        }
        // the bounds asserted since the last sync are what can move an
        // implied bound: their owner columns, plus the basics whose rows
        // contain them — collected before the sync consumes the range
        for i in self.simplex.num_asserted()..self.theory_stack.len() {
            let Some(p) = self.lit_prepared[self.theory_lits[i].code()].as_ref() else {
                continue;
            };
            let Some(c) = p.tableau_owner() else { continue };
            if self.guided.contains_key(&c) {
                self.guided_dirty.push(c);
            }
            for &b in self.simplex.rows_containing(c) {
                let b = b as usize;
                if self.guided.contains_key(&b) {
                    self.guided_dirty.push(b);
                }
            }
        }
        let pivots_before = self.simplex.pivots();
        match self.simplex_check_budgeted(self.guided_pivot_budget) {
            Some(Step::Ok) => {
                // pivots rewrite rows wholesale; fall back to a full scan
                let scan_all = self.simplex.pivots() != pivots_before;
                let entailed_before = self.stats.tprop_entailed;
                self.simplex_guided_propagate(scan_all);
                self.guided_exhausted_streak = 0;
                if self.stats.tprop_entailed > entailed_before {
                    // the eager check is earning its keep: after a streak
                    // of productive scans, spend more on it
                    self.guided_productive_streak += 1;
                    if self.guided_productive_streak >= GUIDED_ADAPT_STREAK
                        && self.guided_pivot_budget < GUIDED_PIVOT_BUDGET_MAX
                    {
                        self.guided_productive_streak = 0;
                        self.guided_pivot_budget =
                            (self.guided_pivot_budget * 2).min(GUIDED_PIVOT_BUDGET_MAX);
                        self.guided_row_cap = (self.guided_row_cap * 2).min(GUIDED_ROW_CAP_MAX);
                        OBS_GUIDED_RAISED.incr();
                    }
                } else {
                    self.guided_productive_streak = 0;
                }
                Step::Ok
            }
            Some(conflict) => conflict,
            None => {
                // budget ran out: the tableau needs real pivot work, which
                // the leaf check will finish — drop the propagation attempt
                // (it is an optimisation, never required for soundness).
                // Repeated exhaustion means warm starts are not warm here;
                // back the budget off so the wasted eager pivots shrink.
                self.guided_dirty.clear();
                self.guided_productive_streak = 0;
                self.guided_exhausted_streak += 1;
                if self.guided_exhausted_streak >= GUIDED_ADAPT_STREAK
                    && self.guided_pivot_budget > GUIDED_PIVOT_BUDGET_MIN
                {
                    self.guided_exhausted_streak = 0;
                    self.guided_pivot_budget =
                        (self.guided_pivot_budget / 2).max(GUIDED_PIVOT_BUDGET_MIN);
                    self.guided_row_cap = (self.guided_row_cap / 2).max(GUIDED_ROW_CAP_MIN);
                    OBS_GUIDED_LOWERED.incr();
                }
                Step::Ok
            }
        }
    }

    /// [`Engine::simplex_check`] with a pivot budget (see
    /// [`IncrementalSimplex::check_budgeted`]): `None` means the budget ran
    /// out — the new bounds are synced into the tableau but `simplex_checked`
    /// is *not* advanced, so the next unbudgeted check resumes the pivot
    /// sequence and delivers the verdict.
    fn simplex_check_budgeted(&mut self, max_pivots: u64) -> Option<Step> {
        if self.theory_stack.len() <= self.simplex_checked {
            return Some(Step::Ok);
        }
        if !self.config.incremental_simplex {
            return Some(self.simplex_check());
        }
        self.stats.simplex_checks += 1;
        let _span = posr_obs::span!("simplex", "simplex.check");
        let t0 = std::time::Instant::now();
        let pivots_before = self.simplex.pivots();
        let mut outcome = Some(Ok(()));
        for i in self.simplex.num_asserted()..self.theory_stack.len() {
            let prepared = self.lit_prepared[self.theory_lits[i].code()]
                .clone()
                .expect("theory literals are registered at grow_theory");
            if let Err(core) = self.simplex.assert_prepared(&prepared, i as u32) {
                outcome = Some(Err(core));
                break;
            }
        }
        if let Some(Ok(())) = outcome {
            outcome = self.simplex.check_budgeted(max_pivots);
        }
        self.simplex_time += t0.elapsed();
        HIST_CHECK_PIVOTS.record(self.simplex.pivots().saturating_sub(pivots_before));
        match outcome {
            Some(Ok(())) => {
                self.simplex_checked = self.theory_stack.len();
                Some(Step::Ok)
            }
            Some(Err(core)) => {
                let core: Vec<usize> = core.iter().map(|&i| i as usize).collect();
                let (conflict, pid) = self.certified_conflict(core);
                Some(Step::Conflict(conflict, pid))
            }
            None => None,
        }
    }

    /// The guided scan proper: for every registered slack column, the
    /// feasible assignment β prunes the atom lists to the candidates β
    /// does not already refute (β always lies inside the implied interval,
    /// so an atom β violates cannot be entailed), and only then is the
    /// implied row bound computed and compared.  Entailed atoms are
    /// enqueued with [`TPROP_REASON`] and their entailing bound tags — the
    /// premises of the lazy explanation — recorded in `tprop_guided`.
    fn simplex_guided_propagate(&mut self, scan_all: bool) {
        let cols: Vec<usize> = if scan_all {
            self.guided.keys().copied().collect()
        } else {
            let mut dirty = std::mem::take(&mut self.guided_dirty);
            dirty.sort_unstable();
            dirty.dedup();
            dirty
        };
        self.guided_dirty.clear();
        let mut entailed: Vec<(Lit, Vec<u32>)> = Vec::new();
        let mut tags: Vec<u32> = Vec::new();
        for col in cols {
            let Some(atoms) = self.guided.get(&col) else {
                continue;
            };
            let beta = self.simplex.beta_of(col);
            let upper_run = &atoms.upper[atoms.upper.partition_point(|(hi, _)| *hi < beta)..];
            if upper_run.iter().any(|&(_, l)| self.assign[l.var()] == 0) {
                tags.clear();
                if let Some(implied) =
                    self.simplex
                        .implied_bound(col, true, self.guided_row_cap, &mut tags)
                {
                    for &(hi, lit) in upper_run {
                        if implied <= hi && self.assign[lit.var()] == 0 {
                            entailed.push((lit, tags.clone()));
                        }
                    }
                }
            }
            let lower_run = &atoms.lower[..atoms.lower.partition_point(|(lo, _)| *lo <= beta)];
            if lower_run.iter().any(|&(_, l)| self.assign[l.var()] == 0) {
                tags.clear();
                if let Some(implied) =
                    self.simplex
                        .implied_bound(col, false, self.guided_row_cap, &mut tags)
                {
                    for &(lo, lit) in lower_run {
                        if implied >= lo && self.assign[lit.var()] == 0 {
                            entailed.push((lit, tags.clone()));
                        }
                    }
                }
            }
        }
        for (lit, tags) in entailed {
            if self.assign[lit.var()] != 0 {
                continue;
            }
            if self.proof.is_some() && !self.guided_certifiable(lit, &tags) {
                // a lemma the checker could not replay would poison the
                // proof; forgo the propagation instead (rare: the Farkas
                // recovery only fails on non-irreducible premise sets)
                continue;
            }
            self.stats.theory_props += 1;
            self.stats.tprop_entailed += 1;
            self.tprop_mark[lit.var()] = self.theory_stack.len();
            self.tprop_guided[lit.var()] = Some(tags);
            self.enqueue(lit, TPROP_REASON);
            // mirror the interval path: a root-level propagation must be
            // materialised eagerly for the replayer
            if self.proof.is_some() && self.decision_level() == 0 {
                let (lemma, kind) = self.explain_tprop(lit);
                self.log_lemma(&lemma, kind);
            }
        }
    }

    /// `true` when the guided entailment of `lit` from the premise tags has
    /// a recoverable Farkas certificate (the rows of the premises plus the
    /// negated literal's constraint combine to a positive contradiction).
    fn guided_certifiable(&self, lit: Lit, tags: &[u32]) -> bool {
        let Some(neg) = self.lit_constraint[lit.negate().code()].as_ref() else {
            return false;
        };
        let mut idx: Vec<usize> = tags.iter().map(|&t| t as usize).collect();
        idx.sort_unstable();
        idx.dedup();
        let mut rows = vec![le_row(neg)];
        rows.extend(idx.iter().map(|&i| le_row(&self.theory_stack[i])));
        farkas_coefficients(&rows).is_some()
    }

    /// Theory propagation: scans the atoms of every form one of `changed`
    /// variables occurs in, and enqueues the literals the current
    /// intervals entail — with a [`TPROP_REASON`] marker instead of a
    /// materialised clause; the bound core justifying the literal is only
    /// computed if conflict analysis later resolves on it
    /// ([`Engine::explain_tprop`]).  This is what cuts the
    /// parity/bound conflicts of the tag encodings off levels early:
    /// a literal the intervals already decide never becomes a decision,
    /// so whole refutation subtrees are skipped instead of being
    /// re-learned clause by clause.
    fn theory_propagate(&mut self, changed: &[Var]) {
        if !self.config.theory_propagation || changed.is_empty() {
            return;
        }
        self.atom_table.cur_stamp += 1;
        let stamp = self.atom_table.cur_stamp;
        let mut entailed: Vec<Lit> = Vec::new();
        for &v in changed {
            let Some(form_ids) = self.atom_table.by_var.get(&v) else {
                continue;
            };
            for &fi in form_ids {
                if self.atom_table.stamps[fi] == stamp {
                    continue;
                }
                self.atom_table.stamps[fi] = stamp;
                let form = &self.atom_table.forms[fi];
                let (min, max) = self.cur_env.expr_range(&form.expr);
                // form + k ≤ 0 is entailed true iff k ≤ −max(form) and
                // entailed false iff k ≥ 1 − min(form); the sorted atom
                // list makes both a run from one end
                if let Some(max) = max {
                    let cut = -max;
                    for &(k, b) in &form.atoms {
                        if Rat::from_int(k) > cut {
                            break;
                        }
                        if self.assign[b] == 0 {
                            entailed.push(Lit::positive(b));
                        }
                    }
                }
                if let Some(min) = min {
                    let cut = Rat::ONE - min;
                    for &(k, b) in form.atoms.iter().rev() {
                        if Rat::from_int(k) < cut {
                            break;
                        }
                        if self.assign[b] == 0 {
                            entailed.push(Lit::negative(b));
                        }
                    }
                }
            }
        }
        for lit in entailed {
            // an earlier enqueue of this scan may have assigned the
            // variable (the same atom can surface through several forms'
            // runs only if duplicated, but stay defensive)
            if self.assign[lit.var()] != 0 {
                continue;
            }
            self.stats.theory_props += 1;
            self.tprop_mark[lit.var()] = self.theory_stack.len();
            self.tprop_guided[lit.var()] = None;
            self.enqueue(lit, TPROP_REASON);
            // a level-0 theory propagation extends the *root* trail, which
            // a replayer cannot reproduce from clauses alone — materialise
            // its explanation eagerly as a bound lemma
            if self.proof.is_some() && self.decision_level() == 0 {
                let (lemma, kind) = self.explain_tprop(lit);
                self.log_lemma(&lemma, kind);
            }
        }
    }

    /// Materialises the lazy explanation of a theory-propagated literal,
    /// returning the lemma clause and the certificate kind a replayer
    /// verifies it under.
    ///
    /// A *guided* propagation recorded its premises (the bound tags of one
    /// tableau row) at enqueue time; the lemma is `lit ∨ ¬premises` and
    /// the certificate is the Farkas combination of the premise rows with
    /// the negated literal — interval propagation cannot replay a
    /// multi-variable row entailment.
    ///
    /// An *interval* propagation re-derives its core: the negated
    /// literal's constraint is jointly bound-infeasible with the
    /// theory-stack prefix recorded at propagation time, so the tracked
    /// propagator's conflict core over that set — minus the negated
    /// constraint itself — is a set of asserted literals implying `lit`.
    /// Falls back to the whole prefix when the from-scratch pass cannot
    /// reproduce the incremental fixpoint (round-capped): sound, just
    /// less sharp.
    fn explain_tprop(&mut self, lit: Lit) -> (Vec<Lit>, CertKind) {
        let t0 = std::time::Instant::now();
        if let Some(tags) = self.tprop_guided[lit.var()].clone() {
            let mut idx: Vec<usize> = tags.iter().map(|&t| t as usize).collect();
            idx.sort_unstable();
            idx.dedup();
            idx.retain(|&i| i < self.theory_stack.len());
            let mut lits = vec![lit];
            for &i in &idx {
                lits.push(self.theory_lits[i].negate());
            }
            let kind = if self.proof.is_some() {
                // same row order as the clause: entry j is the constraint
                // of the negation of clause literal j
                let neg = self.lit_constraint[lit.negate().code()]
                    .as_ref()
                    .expect("theory-propagated literals carry a constraint");
                let mut rows = vec![le_row(neg)];
                rows.extend(idx.iter().map(|&i| le_row(&self.theory_stack[i])));
                match farkas_coefficients(&rows) {
                    Some(lambda) => CertKind::Farkas(lambda),
                    None => {
                        self.proof_incomplete("guided propagation without a Farkas certificate");
                        CertKind::Bounds
                    }
                }
            } else {
                CertKind::Bounds
            };
            self.explain_time += t0.elapsed();
            return (lits, kind);
        }
        let mark = self.tprop_mark[lit.var()].min(self.theory_stack.len());
        let neg = self.lit_constraint[lit.negate().code()]
            .clone()
            .expect("theory-propagated literals carry a constraint");
        let mut constraints = self.theory_stack[..mark].to_vec();
        constraints.push(neg);
        let mut lits = vec![lit];
        match explain::bound_conflict_core(&constraints) {
            Some(core) => {
                for i in core {
                    if i < mark {
                        lits.push(self.theory_lits[i].negate());
                    }
                }
            }
            None => {
                self.proof_incomplete("theory propagation without a reproducible core");
                for i in 0..mark {
                    lits.push(self.theory_lits[i].negate());
                }
            }
        }
        self.explain_time += t0.elapsed();
        (lits, CertKind::Bounds)
    }

    /// Divisibility check over the asserted equality subsystem with the
    /// bound-pinned variables substituted out (the parity conflicts of
    /// loopy Parikh encodings); explanations come from the elimination's
    /// and the tracked propagator's reason sets.
    fn gcd_check(&mut self) -> Step {
        self.stats.gcd_checks += 1;
        let t0 = std::time::Instant::now();
        // fast path: pinned values without provenance
        let fixed_plain: crate::eqelim::FixedVars = self
            .cur_env
            .fixed()
            .into_iter()
            .map(|(v, k)| (v, (k, Default::default())))
            .collect();
        let refuted = crate::eqelim::conflict_core_fixed(&self.theory_stack, &fixed_plain);
        self.gcd_time += t0.elapsed();
        if refuted.is_none() {
            return Step::Ok;
        }
        // conflict: redo with tracked provenance so the fixing constraints
        // enter the core (required for the learned clause to be sound)
        let t0 = std::time::Instant::now();
        let fixed_tracked = explain::fixed_reasons(&self.theory_stack);
        // the minimisation checker only has to *prove* subsets infeasible,
        // so it runs the untracked propagation (no provenance bookkeeping)
        let core = match crate::eqelim::conflict_core_fixed(&self.theory_stack, &fixed_tracked) {
            Some(core) if core.len() <= MINIMIZE_CAP => explain::minimize_core_budgeted(
                &self.theory_stack,
                core,
                &gcd_refutes,
                MINIMIZE_BUDGET,
            ),
            Some(core) => core,
            // the tracked propagator pins at least the variables the
            // incremental environment pinned, so this is unreachable; fall
            // back to the full stack
            None => {
                self.proof_incomplete("gcd conflict without a reproducible core");
                (0..self.theory_stack.len()).collect()
            }
        };
        self.explain_time += t0.elapsed();
        let conflict = self.core_to_conflict(&core);
        let pid = self.log_lemma(&conflict, CertKind::Gcd);
        Step::Conflict(conflict, pid)
    }

    /// Simplex check of the asserted conjunction (run at the leaves); a
    /// refutation's explanation is the Farkas certificate of the stuck
    /// tableau row — already irreducible, no minimisation loop needed.
    ///
    /// The default path runs on the engine's *persistent* tableau: the
    /// literals asserted since the last check are synced as O(1) bound
    /// assertions (their atoms were registered at [`Engine::grow_theory`])
    /// and the pivot loop warm-starts from the previous basis, so a
    /// re-check after a handful of new bounds costs a few pivots instead
    /// of a full from-scratch solve.  `incremental_simplex: false`
    /// reconstructs a tableau per check — the differential oracle and the
    /// ablation baseline.
    fn simplex_check(&mut self) -> Step {
        if self.theory_stack.len() <= self.simplex_checked {
            return Step::Ok;
        }
        self.stats.simplex_checks += 1;
        let _span = posr_obs::span!("simplex", "simplex.check");
        let t0 = std::time::Instant::now();
        // the scope sees every tableau this thread pivots (persistent or
        // scratch), so its delta is the per-check pivot count either way
        let pivots_before = self.pivot_scope.get(crate::simplex::obs_pivot_counter());
        let outcome = if self.config.incremental_simplex {
            self.incremental_simplex_check()
        } else {
            self.scratch_simplex_check()
        };
        self.simplex_time += t0.elapsed();
        HIST_CHECK_PIVOTS.record(
            self.pivot_scope
                .get(crate::simplex::obs_pivot_counter())
                .saturating_sub(pivots_before),
        );
        match outcome {
            Some(Ok(())) => {
                self.simplex_checked = self.theory_stack.len();
                Step::Ok
            }
            Some(Err(core)) => {
                let core: Vec<usize> = core.iter().map(|&i| i as usize).collect();
                let (conflict, pid) = self.certified_conflict(core);
                Step::Conflict(conflict, pid)
            }
            None => {
                // cancelled mid-check: `simplex_checked` stays behind the
                // stack so nothing counts as verified, and the caller must
                // consult `self.cancelled` before trusting the `Ok`
                self.cancelled = true;
                Step::Ok
            }
        }
    }

    /// Sync-and-check on the persistent tableau.  Assertion tags are
    /// theory-stack indices, so both the O(1) clash cores of the sync and
    /// the Farkas cores of the pivot loop index asserted literals.
    ///
    /// The pivot loop runs in [`LEAF_CANCEL_SLICE`]-sized budget slices
    /// with a cancellation poll between them — on big tableaux a single
    /// check can pivot for seconds, far past the search loop's per-
    /// iteration poll.  `None` means cancelled: the tableau is left
    /// consistent mid-repair (a budget-exhausted check always is) and the
    /// remaining violations stay queued for whoever checks next.
    fn incremental_simplex_check(&mut self) -> Option<Result<(), Vec<u32>>> {
        for i in self.simplex.num_asserted()..self.theory_stack.len() {
            let prepared = self.lit_prepared[self.theory_lits[i].code()]
                .clone()
                .expect("theory literals are registered at grow_theory");
            if let Err(core) = self.simplex.assert_prepared(&prepared, i as u32) {
                return Some(Err(core));
            }
        }
        loop {
            if let Some(result) = self.simplex.check_budgeted(LEAF_CANCEL_SLICE) {
                return Some(result);
            }
            // a single check can pivot for seconds: keep the watchdog's
            // pivot gauge moving between search-loop iterations
            PROGRESS_PIVOTS.set(crate::simplex::obs_pivot_counter().value());
            if self.config.cancel.can_fire() && self.config.cancel.is_cancelled() {
                return None;
            }
        }
    }

    /// The PR-4 baseline: a fresh tableau per check (kept as a
    /// differential oracle; also what the ablation's incremental-vs-scratch
    /// pivot comparison runs against).  Sliced against cancellation like
    /// [`Engine::incremental_simplex_check`]; the abandoned tableau is
    /// simply dropped.
    fn scratch_simplex_check(&mut self) -> Option<Result<(), Vec<u32>>> {
        let mut simplex = IncrementalSimplex::new();
        for (i, c) in self.theory_stack.iter().enumerate() {
            if let Err(core) = simplex.assert_constraint(c, i as u32) {
                return Some(Err(core));
            }
        }
        loop {
            if let Some(result) = simplex.check_budgeted(LEAF_CANCEL_SLICE) {
                return Some(result);
            }
            PROGRESS_PIVOTS.set(crate::simplex::obs_pivot_counter().value());
            if self.config.cancel.can_fire() && self.config.cancel.is_cancelled() {
                return None;
            }
        }
    }

    /// The conflicting-clause form of a theory core: negations of the
    /// asserted literals the core names.
    fn core_to_conflict(&self, core: &[usize]) -> Vec<Lit> {
        core.iter().map(|&i| self.theory_lits[i].negate()).collect()
    }

    /// The conflict clause of a leaf theory core, certified when proof
    /// logging is on: the core is logged as a theory lemma whose
    /// certificate kind the independent checker replays — an interval
    /// refutation, a GCD/elimination refutation, or (after deletion-
    /// minimising to an irreducible rational core) an exact Farkas
    /// combination recovered by Gaussian elimination.  With logging off
    /// this is exactly [`Engine::core_to_conflict`].
    fn certified_conflict(&mut self, mut core: Vec<usize>) -> (Vec<Lit>, u64) {
        if self.proof.is_none() {
            return (self.core_to_conflict(&core), 0);
        }
        let cs: Vec<SimplexConstraint> =
            core.iter().map(|&i| self.theory_stack[i].clone()).collect();
        let kind = if explain::bound_infeasible(&cs) {
            CertKind::Bounds
        } else if gcd_refutes(&cs) {
            CertKind::Gcd
        } else if !check_feasibility(&cs).is_feasible() {
            // an irreducible rationally-infeasible subsystem has Farkas
            // multipliers that are unique up to scale, so minimise first
            // and recover them without a tableau
            let t0 = std::time::Instant::now();
            if core.len() <= MINIMIZE_CAP {
                core = explain::minimize_core(&self.theory_stack, core, &|cs| {
                    !check_feasibility(cs).is_feasible()
                });
            }
            self.explain_time += t0.elapsed();
            let rows: Vec<crate::term::LinExpr> = core
                .iter()
                .map(|&i| le_row(&self.theory_stack[i]))
                .collect();
            match farkas_coefficients(&rows) {
                Some(lambda) => CertKind::Farkas(lambda),
                None => {
                    self.proof_incomplete("rational conflict without a Farkas certificate");
                    CertKind::Bounds
                }
            }
        } else {
            // integer-infeasible but rationally feasible and not
            // GCD-refutable: the branch-and-bound refutation has no
            // replayable certificate (yet)
            self.proof_incomplete("integer conflict without a replayable certificate");
            CertKind::Bounds
        };
        let conflict = self.core_to_conflict(&core);
        let pid = self.log_lemma(&conflict, kind);
        (conflict, pid)
    }

    /// Full assignment: the exact integer check.  The branch-and-bound
    /// inherits the engine's cancel token so a deadline cuts it off
    /// mid-search (surfacing as a `ResourceOut` the caller converts into
    /// a clean cancellation rather than a tainting blocking clause).
    fn final_check(&mut self) -> FinalOutcome {
        self.stats.final_checks += 1;
        let mut int_config = self.config.int_config.clone();
        int_config.cancel = self.config.cancel.clone();
        let (result, _pivots) = solve_integer_with_pivots(&self.theory_stack, &int_config);
        match result {
            IntFeasResult::Sat(values) => FinalOutcome::Model(Model::from_values(values)),
            IntFeasResult::Unsat => {
                let core: Vec<usize> = (0..self.theory_stack.len()).collect();
                let core = if core.len() <= MINIMIZE_CAP {
                    explain::minimize_core(&self.theory_stack, core, &|cs| {
                        explain::integer_infeasible(cs, EXPLAIN_INT_BUDGET)
                    })
                } else {
                    core
                };
                let (conflict, pid) = self.certified_conflict(core);
                FinalOutcome::Conflict(conflict, pid)
            }
            IntFeasResult::ResourceOut => FinalOutcome::ResourceOut,
        }
    }

    fn bump(&mut self, var: usize) {
        self.activity[var] += self.var_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(var, &self.activity);
    }

    /// 1UIP conflict analysis.  `conflict` is a set of literals all false
    /// under the current assignment, at least one at the current level.
    /// Returns the learned clause (asserting literal first), the backjump
    /// level, and — with proof logging on — the RUP hint chain: the proof
    /// ids of the resolved reasons in *forward trail order* followed by
    /// the conflict clause's id.  In that order each hint clause is unit
    /// (or conflicting) under the negated learned clause plus the root
    /// trail, so an independent replayer validates the clause by
    /// propagation alone.
    fn analyze(&mut self, conflict: Vec<Lit>, conflict_id: u64) -> (Vec<Lit>, u32, Vec<u64>) {
        let current = self.decision_level();
        let mut learnt: Vec<Lit> = vec![Lit::positive(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut reason_lits: Vec<Lit> = conflict;
        let mut skip: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut hint_steps: Vec<(usize, u64)> = Vec::new();
        loop {
            for &q in &reason_lits {
                if Some(q) == skip {
                    continue;
                }
                let v = q.var();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(v);
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // next seen literal on the trail
            loop {
                index -= 1;
                if self.seen[self.trail[index].var()] {
                    break;
                }
            }
            let p = self.trail[index];
            self.seen[p.var()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = p.negate();
                break;
            }
            let r = self.reason[p.var()];
            debug_assert_ne!(r, NO_REASON, "only the UIP may lack a reason");
            reason_lits = if r == TPROP_REASON {
                // lazy theory explanation, materialised only now that the
                // propagated literal is actually resolved on
                let (lemma, kind) = self.explain_tprop(p);
                if self.proof.is_some() {
                    let id = self.log_lemma(&lemma, kind);
                    hint_steps.push((index, id));
                }
                lemma
            } else {
                if self.proof.is_some() {
                    hint_steps.push((index, self.clauses[r as usize].proof_id));
                }
                self.clauses[r as usize].lits.clone()
            };
            skip = Some(p);
        }
        // backjump level: highest level among the non-UIP literals, which
        // also moves that literal into the second watch position
        let mut backjump = 0;
        for i in 1..learnt.len() {
            let lvl = self.level[learnt[i].var()];
            if lvl > backjump {
                backjump = lvl;
                learnt.swap(1, i);
            }
        }
        for &l in &learnt {
            self.seen[l.var()] = false;
        }
        let hints = if self.proof.is_some() {
            hint_steps.sort_unstable_by_key(|&(i, _)| i);
            let mut hints: Vec<u64> = hint_steps.into_iter().map(|(_, id)| id).collect();
            hints.push(conflict_id);
            hints
        } else {
            Vec::new()
        };
        (learnt, backjump, hints)
    }

    /// Literal-block distance of a learned clause: the number of distinct
    /// decision levels it spans (the standard quality measure driving GC).
    fn lbd_of(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    /// Learns from a conflict: analyse, backjump, assert.  `false` when the
    /// conflict is at the root level (search exhausted).
    fn resolve_conflict(&mut self, conflict: Vec<Lit>, conflict_id: u64) -> bool {
        self.stats.conflicts += 1;
        if let Some(b) = self.config.cancel.budget() {
            b.charge_conflicts(1);
        }
        // theory conflicts may live entirely below the current level:
        // backtrack to the newest involved level first
        let max_level = conflict
            .iter()
            .map(|l| self.level[l.var()])
            .max()
            .unwrap_or(0);
        self.cancel_until(max_level);
        if self.decision_level() == 0 {
            // the conflict clause is false on the root trail, so the empty
            // clause follows by propagation alone: one hint suffices
            if let Some(p) = &mut self.proof {
                let id = p.derived(Vec::new(), vec![conflict_id]);
                self.last_final_id = id;
            }
            return false;
        }
        let (learnt, backjump, hints) = self.analyze(conflict, conflict_id);
        self.cancel_until(backjump);
        let pid = match &mut self.proof {
            Some(p) => p.derived(learnt.clone(), hints),
            None => 0,
        };
        let asserting = learnt[0];
        let reason = if learnt.len() >= 2 {
            self.stats.learned_total += 1;
            let lbd = self.lbd_of(&learnt);
            HIST_LBD.record(lbd as u64);
            // approximate clause-DB growth against the memory budget
            // (credited back when the GC drops the clause)
            posr_obs::budget::charge_mem(clause_bytes(learnt.len()));
            self.attach(Clause {
                lits: learnt,
                learnt: true,
                lbd,
                proof_id: pid,
            })
        } else {
            NO_REASON
        };
        self.enqueue(asserting, reason);
        self.var_inc /= 0.95;
        true
    }

    /// Final conflict analysis at a failed assumption (MiniSat's
    /// `analyzeFinal`): `failed` is the pending assumption the current
    /// trail falsifies.  Walks the implication graph back from `¬failed`
    /// to the subset of *assumptions* it depends on — the unsat core —
    /// and, with proof logging on, derives the clause of negated core
    /// assumptions with the same forward-trail-order hint chain as
    /// [`Engine::analyze`] (here the falsifying reasons close the chain,
    /// so no separate conflict clause is appended).
    fn analyze_final(&mut self, failed: Lit) {
        let mut clause = vec![failed.negate()];
        let mut core = vec![failed];
        let mut hint_steps: Vec<(usize, u64)> = Vec::new();
        if self.level[failed.var()] > 0 {
            self.seen[failed.var()] = true;
            let start = self.trail_lim[0];
            for i in (start..self.trail.len()).rev() {
                let l = self.trail[i];
                let v = l.var();
                if !self.seen[v] {
                    continue;
                }
                self.seen[v] = false;
                let r = self.reason[v];
                if r == NO_REASON {
                    // above root level every reasonless literal is an
                    // assumption pseudo-decision (search decisions only
                    // happen once all assumptions are enqueued)
                    clause.push(l.negate());
                    core.push(l);
                    continue;
                }
                let reason_lits = if r == TPROP_REASON {
                    let (lemma, kind) = self.explain_tprop(l);
                    if self.proof.is_some() {
                        let id = self.log_lemma(&lemma, kind);
                        hint_steps.push((i, id));
                    }
                    lemma
                } else {
                    if self.proof.is_some() {
                        hint_steps.push((i, self.clauses[r as usize].proof_id));
                    }
                    self.clauses[r as usize].lits.clone()
                };
                for q in reason_lits {
                    if q.var() != v && self.level[q.var()] > 0 {
                        self.seen[q.var()] = true;
                    }
                }
            }
        }
        self.last_core = Some(core);
        if let Some(p) = &mut self.proof {
            hint_steps.sort_unstable_by_key(|&(i, _)| i);
            let hints: Vec<u64> = hint_steps.into_iter().map(|(_, id)| id).collect();
            let id = p.derived(clause, hints);
            self.last_final_id = id;
        }
    }

    /// LBD-ranked learned-clause garbage collection, run at decision level
    /// 0: binary lemmas always survive, the worse half of the rest (higher
    /// LBD, then older) is dropped.  Root-satisfied clauses of *any* kind
    /// are removed — this is what reclaims the guarded clauses of popped
    /// assertion frames — and root-false literals are strengthened away.
    /// Watches are rebuilt from scratch.
    fn reduce_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        posr_obs::instant("cdcl", "cdcl.gc");
        // root-level literals never participate in conflict analysis, so
        // their reason clauses are not needed and no clause is locked
        for r in &mut self.reason {
            *r = NO_REASON;
        }
        // rank the disposable learned clauses: keep low LBD, then newer
        let mut disposable: Vec<(u32, std::cmp::Reverse<usize>)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && c.lits.len() > GC_EXEMPT_LEN)
            .map(|(i, c)| (c.lbd, std::cmp::Reverse(i)))
            .collect();
        disposable.sort_unstable();
        let cutoff = disposable.len() / 2;
        let mut drop_mask = vec![false; self.clauses.len()];
        for &(_, std::cmp::Reverse(i)) in &disposable[cutoff..] {
            drop_mask[i] = true;
            self.stats.gc_dropped += 1;
        }
        let old = std::mem::take(&mut self.clauses);
        self.originals.clear();
        for w in &mut self.watches {
            w.clear();
        }
        for (i, mut clause) in old.into_iter().enumerate() {
            if drop_mask[i] {
                if let Some(p) = &mut self.proof {
                    p.delete(clause.proof_id);
                }
                posr_obs::budget::uncharge_mem(clause_bytes(clause.lits.len()));
                continue;
            }
            if clause.lits.iter().any(|&l| self.value(l) == 1) {
                // satisfied at the root: permanently true, and never again
                // an antecedent of a learned clause
                if let Some(p) = &mut self.proof {
                    p.delete(clause.proof_id);
                }
                continue;
            }
            // strengthening keeps the proof id: the removed literals are
            // root-false, so replaying the logged clause is equivalent
            clause.lits.retain(|&l| self.value(l) == 0);
            match clause.lits.len() {
                0 => {
                    self.root_unsat = true;
                    self.last_final_id = 0;
                }
                1 => {
                    if !self.enqueue_root(clause.lits[0]) {
                        self.root_unsat = true;
                        self.last_final_id = 0;
                    }
                }
                _ => {
                    self.attach(clause);
                }
            }
        }
    }

    fn decide(&mut self) -> bool {
        while let Some(var) = self.heap.pop_max(&self.activity) {
            if self.assign[var] == 0 {
                let lit = if self.phase[var] {
                    Lit::positive(var)
                } else {
                    Lit::negative(var)
                };
                self.stats.decisions += 1;
                self.new_decision_level();
                self.enqueue(lit, NO_REASON);
                return true;
            }
        }
        false
    }

    fn undecided_unknown(&self) -> SolverResult {
        if self.cancelled {
            // names the axis that fired: flag, budget axis, or deadline
            SolverResult::Unknown(self.config.cancel.unknown_reason())
        } else {
            SolverResult::Unknown("resource limit reached".to_string())
        }
    }

    /// The `Unsat` verdict, demoted to `Unknown` when this call saw a
    /// resource-out or the database holds a blocking clause from an
    /// earlier one (tainted refutations are not proofs).
    fn unsat_result(&self) -> SolverResult {
        if self.saw_resource_out || self.tainted {
            SolverResult::Unknown("resource limit reached".to_string())
        } else {
            SolverResult::Unsat
        }
    }

    /// Decides the current clause database under `assumptions`.
    ///
    /// `Unsat` means the database is unsatisfiable *under the assumptions*
    /// (for the incremental layer: the live assertion frames, selected by
    /// their guard literals, plus the caller's extra assumptions).  The
    /// engine backtracks to the root before returning, keeping learned
    /// clauses, activities and phases for the next call.
    pub(crate) fn solve(&mut self, assumptions: &[Lit]) -> SolverResult {
        self.saw_resource_out = false;
        self.cancelled = false;
        self.last_core = None;
        if let Some(p) = &mut self.proof {
            p.query();
            for &a in assumptions {
                p.assume(a);
            }
        }
        if !self.root_unsat {
            // between-solve GC: long incremental sessions accumulate
            // learned clauses even when no single search restarts
            let live = self.clauses.iter().filter(|c| c.learnt).count();
            if live > self.max_learnts {
                self.reduce_db();
                self.max_learnts += self.max_learnts / 2;
            }
        }
        if self.root_unsat {
            self.flush_global();
            let result = self.unsat_result();
            self.finish_query(&result);
            return result;
        }
        self.assumptions = assumptions.to_vec();
        self.solve_base_conflicts = self.stats.conflicts;
        let result = {
            let _span = posr_obs::span!("cdcl", "cdcl.solve");
            // every tableau this call touches (the persistent one, the
            // scratch oracle, branch-and-bound, the one-shot certifiers)
            // flushes its pivot/row-touch counts into the obs counters;
            // the attached scope is what `stats()` derives them from
            let _pivots = self.pivot_scope.attach();
            // layers below with no token in sight (proof sinks, caches)
            // charge the solve's budget through the thread attachment
            let _budget = self.config.cancel.budget().map(posr_obs::budget::attach);
            self.search()
        };
        self.cancel_until(0);
        self.assumptions.clear();
        self.flush_global();
        self.finish_query(&result);
        result
    }

    /// Closes out a query in the proof log: an `Unsat` answer is sealed
    /// with a `final` step naming the clause that refutes the query (and
    /// gets an unsat core, empty unless assumptions were refuted); any
    /// other answer clears the stale core.
    fn finish_query(&mut self, result: &SolverResult) {
        if matches!(result, SolverResult::Unsat) {
            if self.last_core.is_none() {
                self.last_core = Some(Vec::new());
            }
            if let Some(p) = &mut self.proof {
                p.finish(self.last_final_id);
            }
        } else {
            self.last_core = None;
        }
    }

    /// Publishes the stall watchdog's progress gauges (relaxed stores; a
    /// black-box dump reports the latest values).  Called once per search
    /// iteration — decision/conflict cadence, far off the propagation hot
    /// path.
    fn publish_progress(&self) {
        PROGRESS_CONFLICTS.set(self.stats.conflicts);
        PROGRESS_DECISIONS.set(self.stats.decisions);
        PROGRESS_TRAIL.set(self.trail.len() as u64);
        PROGRESS_PIVOTS.set(crate::simplex::obs_pivot_counter().value());
    }

    fn search(&mut self) -> SolverResult {
        let mut restart_limit = RESTART_BASE * luby(self.stats.restarts);
        let mut conflicts_at_restart = self.stats.conflicts;
        loop {
            self.publish_progress();
            // chaos-test injection point: the search loop absorbs every
            // fault kind (panics unwind to the entry-point catch, a forced
            // cancel fires the token below, an overflow takes the marker
            // path the slow lane and catch both know)
            match posr_obs::fault::fire(
                "cdcl.search",
                &[
                    posr_obs::FaultKind::Panic,
                    posr_obs::FaultKind::Delay,
                    posr_obs::FaultKind::Cancel,
                    posr_obs::FaultKind::Overflow,
                ],
            ) {
                Some(posr_obs::FaultKind::Cancel) => self.config.cancel.cancel(),
                Some(posr_obs::FaultKind::Overflow) => crate::rational::overflow_panic(),
                _ => {}
            }
            if self.config.cancel.can_fire() && self.config.cancel.is_cancelled() {
                self.cancelled = true;
                return self.undecided_unknown();
            }
            if self.trace {
                self.trace_line();
            }
            if self.stats.conflicts - self.solve_base_conflicts >= self.config.max_conflicts as u64
            {
                return SolverResult::Unknown("resource limit reached".to_string());
            }
            let step = match self.propagate() {
                Step::Conflict(c, id) => Step::Conflict(c, id),
                Step::Ok => self.theory_check(),
            };
            match step {
                Step::Conflict(conflict, conflict_id) => {
                    if !self.resolve_conflict(conflict, conflict_id) {
                        self.root_unsat = true;
                        return self.unsat_result();
                    }
                }
                Step::Ok => {
                    // theory propagation enqueued literals: run Boolean
                    // propagation over them before anything else
                    if self.qhead < self.trail.len() {
                        continue;
                    }
                    // assumptions are enqueued as pseudo-decisions before
                    // any search decision; a false assumption means the
                    // database refutes the assumption set
                    if (self.decision_level() as usize) < self.assumptions.len() {
                        let lit = self.assumptions[self.decision_level() as usize];
                        match self.value(lit) {
                            -1 => {
                                self.analyze_final(lit);
                                return self.unsat_result();
                            }
                            1 => {
                                // already implied: push an empty level so
                                // the remaining assumptions keep their slots
                                self.new_decision_level();
                            }
                            _ => {
                                self.new_decision_level();
                                self.enqueue(lit, NO_REASON);
                            }
                        }
                        continue;
                    }
                    if self.trail.len() == self.assign.len() || self.original_clauses_satisfied() {
                        // full assignment (or all original clauses already
                        // satisfied): exact checks
                        if let Step::Conflict(c, id) = self.simplex_check() {
                            if !self.resolve_conflict(c, id) {
                                self.root_unsat = true;
                                return self.unsat_result();
                            }
                            continue;
                        }
                        if self.cancelled {
                            // the check was cut off mid-repair; its Ok is
                            // not a feasibility verdict
                            return self.undecided_unknown();
                        }
                        match self.final_check() {
                            FinalOutcome::Model(model) => return SolverResult::Sat(model),
                            FinalOutcome::Conflict(c, id) => {
                                if !self.resolve_conflict(c, id) {
                                    self.root_unsat = true;
                                    return self.unsat_result();
                                }
                            }
                            FinalOutcome::ResourceOut => {
                                if self.config.cancel.can_fire()
                                    && self.config.cancel.is_cancelled()
                                {
                                    // a cancellation, not a real budget
                                    // exhaustion: bail cleanly instead of
                                    // tainting the database with a
                                    // blocking clause
                                    self.cancelled = true;
                                    return self.undecided_unknown();
                                }
                                self.saw_resource_out = true;
                                // block this branch by refuting its
                                // decisions — a search heuristic, not an
                                // implied clause, so the database is
                                // tainted for refutation purposes from
                                // here on
                                let blocking: Vec<Lit> = self
                                    .trail_lim
                                    .iter()
                                    .filter_map(|&i| self.trail.get(i))
                                    .map(|&l| l.negate())
                                    .collect();
                                if blocking.is_empty() {
                                    return self.undecided_unknown();
                                }
                                self.tainted = true;
                                self.proof_incomplete("resource-out blocking clause");
                                if !self.resolve_conflict(blocking, 0) {
                                    return self.undecided_unknown();
                                }
                            }
                        }
                    } else {
                        // stable partial assignment, about to decide: let
                        // the eager simplex veto or narrow the decision
                        match self.guided_step() {
                            Step::Conflict(c, id) => {
                                if !self.resolve_conflict(c, id) {
                                    self.root_unsat = true;
                                    return self.unsat_result();
                                }
                                continue;
                            }
                            Step::Ok => {
                                if self.qhead < self.trail.len() {
                                    // guided propagation enqueued literals;
                                    // propagate them instead of deciding
                                    continue;
                                }
                            }
                        }
                        if self.stats.conflicts - conflicts_at_restart >= restart_limit {
                            self.stats.restarts += 1;
                            posr_obs::instant("cdcl", "cdcl.restart");
                            conflicts_at_restart = self.stats.conflicts;
                            restart_limit = RESTART_BASE * luby(self.stats.restarts);
                            self.cancel_until(0);
                            let live = self.clauses.iter().filter(|c| c.learnt).count();
                            if live > self.max_learnts {
                                self.reduce_db();
                                if self.root_unsat {
                                    return self.unsat_result();
                                }
                                self.max_learnts += self.max_learnts / 2;
                            }
                            continue;
                        }
                        if !self.decide() {
                            // defensive: every variable assigned — handled by
                            // the full-assignment branch next iteration
                            continue;
                        }
                    }
                }
            }
        }
    }

    fn trace_line(&self) {
        let s = self.stats();
        let s = &s;
        if (s.decisions + s.conflicts).is_multiple_of(256) && s.decisions + s.conflicts > 0 {
            eprintln!(
                "cdcl: decisions {} conflicts {} restarts {} trail {}/{} theory {} checks b{}/g{}/s{}/f{} tprops {} pivots {} time b{:?}/g{:?}/s{:?}/e{:?}",
                s.decisions,
                s.conflicts,
                s.restarts,
                self.trail.len(),
                self.assign.len(),
                self.theory_stack.len(),
                s.bound_checks,
                s.gcd_checks,
                s.simplex_checks,
                s.final_checks,
                s.theory_props,
                s.simplex_pivots,
                self.bound_time,
                self.gcd_time,
                self.simplex_time,
                self.explain_time,
            );
        }
    }

    /// Pushes the counters accumulated since the last flush into the
    /// process-wide totals.
    fn flush_global(&mut self) {
        let now = self.stats();
        let f = &self.flushed;
        GLOBAL_CONFLICTS.fetch_add(now.conflicts - f.conflicts, Ordering::Relaxed);
        GLOBAL_DECISIONS.fetch_add(now.decisions - f.decisions, Ordering::Relaxed);
        GLOBAL_PROPAGATIONS.fetch_add(now.propagations - f.propagations, Ordering::Relaxed);
        GLOBAL_RESTARTS.fetch_add(now.restarts - f.restarts, Ordering::Relaxed);
        GLOBAL_LEARNED.fetch_add(now.learned_total - f.learned_total, Ordering::Relaxed);
        GLOBAL_GC_DROPPED.fetch_add(now.gc_dropped - f.gc_dropped, Ordering::Relaxed);
        GLOBAL_BOUND_CHECKS.fetch_add(now.bound_checks - f.bound_checks, Ordering::Relaxed);
        GLOBAL_GCD_CHECKS.fetch_add(now.gcd_checks - f.gcd_checks, Ordering::Relaxed);
        GLOBAL_SIMPLEX_CHECKS.fetch_add(now.simplex_checks - f.simplex_checks, Ordering::Relaxed);
        GLOBAL_FINAL_CHECKS.fetch_add(now.final_checks - f.final_checks, Ordering::Relaxed);
        GLOBAL_THEORY_PROPS.fetch_add(now.theory_props - f.theory_props, Ordering::Relaxed);
        GLOBAL_SIMPLEX_PIVOTS.fetch_add(now.simplex_pivots - f.simplex_pivots, Ordering::Relaxed);
        GLOBAL_ROW_TOUCHES.fetch_add(now.row_touches - f.row_touches, Ordering::Relaxed);
        GLOBAL_TPROP_ENTAILED.fetch_add(now.tprop_entailed - f.tprop_entailed, Ordering::Relaxed);
        self.flushed = now;
    }
}

enum FinalOutcome {
    Model(Model),
    Conflict(Vec<Lit>, u64),
    ResourceOut,
}

/// `true` when the GCD/elimination refutation applies to `cs` after
/// substituting its interval-pinned variables — the argument the checker
/// replays for `Gcd` lemmas (which also accepts a plain interval
/// refutation, the first arm here).
fn gcd_refutes(cs: &[SimplexConstraint]) -> bool {
    let (env, outcome) = BoundEnv::from_constraints(cs);
    if outcome == BoundOutcome::Refuted {
        return true;
    }
    let fixed: crate::eqelim::FixedVars = env
        .fixed()
        .into_iter()
        .map(|(v, k)| (v, (k, Default::default())))
        .collect();
    crate::eqelim::conflict_core_fixed(cs, &fixed).is_some()
}

/// The `lhs ≤ 0` row of an asserted constraint — the orientation the
/// Farkas recovery and the independent checker agree on.  `Eq` never
/// reaches the theory stack (the clausifier splits it into ≤-halves).
fn le_row(c: &SimplexConstraint) -> crate::term::LinExpr {
    match c.rel {
        Rel::Ge => -c.expr.clone(),
        Rel::Le | Rel::Eq => c.expr.clone(),
    }
}

/// The Luby restart sequence `1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …` (0-based).
fn luby(i: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = i;
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// An indexed max-heap over variable activities (the VSIDS order).
struct VarHeap {
    heap: Vec<usize>,
    /// Position of each variable in `heap`, `usize::MAX` when absent.
    pos: Vec<usize>,
}

impl VarHeap {
    fn new(n: usize) -> VarHeap {
        let mut h = VarHeap {
            heap: (0..n).collect(),
            pos: (0..n).collect(),
        };
        // all activities start equal; the identity layout is a valid heap
        debug_assert_eq!(h.heap.len(), h.pos.len());
        h.heap.shrink_to_fit();
        h
    }

    /// Registers variable `var` (the next dense index) and queues it.
    fn grow(&mut self, var: usize, activity: &[f64]) {
        debug_assert_eq!(var, self.pos.len());
        self.pos.push(usize::MAX);
        self.insert(var, activity);
    }

    fn contains(&self, var: usize) -> bool {
        self.pos[var] != usize::MAX
    }

    fn insert(&mut self, var: usize, activity: &[f64]) {
        if self.contains(var) {
            return;
        }
        self.pos[var] = self.heap.len();
        self.heap.push(var);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Restores heap order after `var`'s activity increased.
    fn update(&mut self, var: usize, activity: &[f64]) {
        if self.contains(var) {
            self.sift_up(self.pos[var], activity);
        }
    }

    fn pop_max(&mut self, activity: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.pos[top] = usize::MAX;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i]] <= activity[self.heap[parent]] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < self.heap.len() && activity[self.heap[l]] > activity[self.heap[largest]] {
                largest = l;
            }
            if r < self.heap.len() && activity[self.heap[r]] > activity[self.heap[largest]] {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.swap(i, largest);
            i = largest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a]] = a;
        self.pos[self.heap[b]] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::CnfFormula;
    use crate::term::{LinExpr, VarPool};

    fn solve(f: &Formula) -> SolverResult {
        solve_cdcl(&f.nnf().simplify(), &SolverConfig::default())
    }

    fn engine_for(cnf: CnfFormula, config: SolverConfig) -> Engine {
        let mut engine = Engine::empty(config);
        engine.grow_theory(&cnf.theory);
        for lits in cnf.clauses {
            engine.add_root_clause(lits);
        }
        engine
    }

    #[test]
    fn luby_sequence_is_correct() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn heap_orders_by_activity() {
        let mut heap = VarHeap::new(4);
        let activity = [1.0, 9.0, 3.0, 7.0];
        // update with the real activities
        for v in 0..4 {
            heap.update(v, &activity);
        }
        let mut order = Vec::new();
        while let Some(v) = heap.pop_max(&activity) {
            order.push(v);
        }
        assert_eq!(order, vec![1, 3, 2, 0]);
        heap.insert(2, &activity);
        heap.insert(1, &activity);
        assert_eq!(heap.pop_max(&activity), Some(1));
    }

    #[test]
    fn sat_conjunction_produces_model() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let f = Formula::and(vec![
            Formula::eq(LinExpr::var(x) + LinExpr::var(y), LinExpr::constant(5)),
            Formula::ge(LinExpr::var(x), LinExpr::constant(2)),
            Formula::ge(LinExpr::var(y), LinExpr::constant(2)),
        ]);
        match solve(&f) {
            SolverResult::Sat(m) => assert!(m.satisfies(&f)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn unsat_interval_gap() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let f = Formula::and(vec![
            Formula::ge(LinExpr::scaled_var(x, 3), LinExpr::constant(1)),
            Formula::le(LinExpr::scaled_var(x, 3), LinExpr::constant(2)),
        ]);
        assert_eq!(solve(&f), SolverResult::Unsat);
    }

    #[test]
    fn backjump_level_is_second_highest() {
        // drive the engine over a pigeonhole-flavoured instance whose
        // refutation requires learning across levels; correctness of the
        // backjump computation shows up as termination with Unsat
        let mut pool = VarPool::new();
        let vars: Vec<_> = (0..6).map(|i| pool.fresh(&format!("x{i}"))).collect();
        let mut conjuncts = Vec::new();
        for &v in &vars {
            conjuncts.push(Formula::or(vec![
                Formula::eq(LinExpr::var(v), LinExpr::constant(0)),
                Formula::eq(LinExpr::var(v), LinExpr::constant(1)),
            ]));
        }
        conjuncts.push(Formula::ge(
            LinExpr::sum_of_vars(vars.iter().copied()),
            LinExpr::constant(7),
        ));
        assert_eq!(solve(&Formula::and(conjuncts)), SolverResult::Unsat);
    }

    #[test]
    fn watched_literal_invariant_holds_under_search() {
        // a formula with many ternary clauses; after solving, every clause's
        // first two literals must be watched exactly by that clause
        let mut pool = VarPool::new();
        let vars: Vec<_> = (0..5).map(|i| pool.fresh(&format!("v{i}"))).collect();
        let mut conjuncts = Vec::new();
        for w in vars.windows(3) {
            conjuncts.push(Formula::or(vec![
                Formula::ge(LinExpr::var(w[0]), LinExpr::constant(1)),
                Formula::ge(LinExpr::var(w[1]), LinExpr::constant(1)),
                Formula::ge(LinExpr::var(w[2]), LinExpr::constant(1)),
            ]));
        }
        conjuncts.push(Formula::le(
            LinExpr::sum_of_vars(vars.iter().copied()),
            LinExpr::constant(1),
        ));
        for &v in &vars {
            conjuncts.push(Formula::ge(LinExpr::var(v), LinExpr::constant(0)));
            conjuncts.push(Formula::le(LinExpr::var(v), LinExpr::constant(1)));
        }
        let f = Formula::and(conjuncts);
        let nnf = f.nnf().simplify();
        let cnf = crate::cnf::Clausifier::clausify(&nnf);
        let mut engine = engine_for(cnf, SolverConfig::default());
        let result = engine.solve(&[]);
        assert!(result.is_sat(), "got {result:?}");
        // invariant: every clause index appears in the watch lists of its
        // first two literals
        for (ci, clause) in engine.clauses.iter().enumerate() {
            for &watched in &clause.lits[..2] {
                assert!(
                    engine.watches[watched.code()].contains(&(ci as u32)),
                    "clause {ci} not watched by {watched:?}"
                );
            }
            for &other in &clause.lits[2..] {
                assert!(
                    !engine.watches[other.code()].contains(&(ci as u32)),
                    "clause {ci} spuriously watched by {other:?}"
                );
            }
        }
    }

    #[test]
    fn disequality_chain_unsat() {
        // x ∈ [0,1], x ≠ 0, x ≠ 1
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let f = Formula::and(vec![
            Formula::ge(LinExpr::var(x), LinExpr::constant(0)),
            Formula::le(LinExpr::var(x), LinExpr::constant(1)),
            Formula::ne(LinExpr::var(x), LinExpr::constant(0)),
            Formula::ne(LinExpr::var(x), LinExpr::constant(1)),
        ]);
        assert_eq!(solve(&f), SolverResult::Unsat);
    }

    #[test]
    fn trivial_formulas() {
        assert!(solve(&Formula::True).is_sat());
        assert_eq!(solve(&Formula::False), SolverResult::Unsat);
    }

    #[test]
    fn repeated_solves_reuse_the_engine() {
        // a sat instance solved twice on one engine: the second call must
        // agree and keep the cumulative counters monotone
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let f = Formula::and(vec![
            Formula::or(vec![
                Formula::eq(LinExpr::var(x), LinExpr::constant(1)),
                Formula::eq(LinExpr::var(x), LinExpr::constant(2)),
            ]),
            Formula::eq(LinExpr::var(y), LinExpr::var(x) + LinExpr::constant(1)),
        ]);
        let cnf = crate::cnf::Clausifier::clausify(&f.nnf().simplify());
        let mut engine = engine_for(cnf, SolverConfig::default());
        let first = engine.solve(&[]);
        assert!(first.is_sat());
        let after_first = engine.stats();
        let second = engine.solve(&[]);
        assert!(second.is_sat());
        let after_second = engine.stats();
        assert!(after_second.decisions >= after_first.decisions);
        assert!(after_second.final_checks > after_first.final_checks);
    }

    #[test]
    fn assumption_solving_is_scoped() {
        // x ∈ [0, 5]; assuming x ≤ -1 is unsat, but the engine itself
        // stays satisfiable afterwards
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let f = Formula::and(vec![
            Formula::ge(LinExpr::var(x), LinExpr::constant(0)),
            Formula::le(LinExpr::var(x), LinExpr::constant(5)),
        ]);
        let mut clausifier = crate::cnf::Clausifier::new();
        clausifier.assert_nnf(&f.nnf().simplify());
        let bad =
            clausifier.literal_of_nnf(&Formula::le(LinExpr::var(x), LinExpr::constant(-1)).nnf());
        let crate::cnf::LitOrConst::Lit(bad) = bad else {
            panic!("expected a literal");
        };
        let mut engine = Engine::empty(SolverConfig::default());
        engine.grow_theory(clausifier.theory());
        for c in clausifier.take_new_definitions() {
            engine.add_root_clause(c);
        }
        for c in clausifier.take_new_assertions() {
            engine.add_root_clause(c);
        }
        assert_eq!(engine.solve(&[bad]), SolverResult::Unsat);
        assert!(engine.solve(&[]).is_sat());
        assert!(engine.solve(&[bad.negate()]).is_sat());
    }

    #[test]
    fn reduce_db_keeps_verdicts_and_drops_clauses() {
        // an unsat pigeonhole instance learns clauses on the way to the
        // refutation; re-solving under a tiny learnt cap fires the
        // between-solve GC, and the verdict must stay Unsat throughout
        let mut pool = VarPool::new();
        let vars: Vec<_> = (0..12).map(|i| pool.fresh(&format!("x{i}"))).collect();
        let mut conjuncts = Vec::new();
        for &v in &vars {
            conjuncts.push(Formula::or(vec![
                Formula::eq(LinExpr::var(v), LinExpr::constant(0)),
                Formula::eq(LinExpr::var(v), LinExpr::constant(1)),
                Formula::eq(LinExpr::var(v), LinExpr::constant(2)),
            ]));
        }
        // pairwise-coupled sums keep the per-conflict clauses long enough
        // that the GC's binary exemption does not protect everything
        for w in vars.windows(4) {
            conjuncts.push(Formula::le(
                LinExpr::sum_of_vars(w.iter().copied()),
                LinExpr::constant(5),
            ));
        }
        conjuncts.push(Formula::ge(
            LinExpr::sum_of_vars(vars.iter().copied()),
            LinExpr::constant(19),
        ));
        let f = Formula::and(conjuncts);
        let cnf = crate::cnf::Clausifier::clausify(&f.nnf().simplify());
        let config = SolverConfig {
            learnt_cap: 1,
            // theory propagation refutes this family in so few conflicts
            // that no restart (hence no in-search GC) ever fires; this
            // test targets the GC, so keep the conflict-driven dynamics
            theory_propagation: false,
            ..SolverConfig::default()
        };
        let mut engine = engine_for(cnf, config);
        let first = engine.solve(&[]);
        assert_eq!(first, SolverResult::Unsat);
        let stats = engine.stats();
        assert!(
            stats.learned_total > 1,
            "instance must actually learn clauses: {stats:?}"
        );
        let live_before = stats.learned_live;
        let second = engine.solve(&[]);
        assert_eq!(second, SolverResult::Unsat);
        let stats = engine.stats();
        assert!(
            stats.gc_dropped > 0 || stats.learned_live < live_before,
            "the between-solve GC must reclaim something: {stats:?} (live before {live_before})"
        );
    }
}
