//! Theory-conflict explanations: minimal infeasible subsets of asserted
//! constraints.
//!
//! The CDCL(T) engine ([`crate::cdcl`]) needs more than a yes/no answer from
//! the theory: when the asserted constraint conjunction is infeasible it
//! must know *which* constraints clash, so the clashing literals can be
//! turned into a learned clause that prunes every branch sharing the same
//! mistake.  This module produces such explanations in two steps:
//!
//! 1. **Tracked bound propagation** ([`bound_conflict_core`]) re-runs the
//!    interval propagation of [`crate::bounds`] while recording, for every
//!    variable bound, the set of constraint indices that contributed to it.
//!    When propagation derives a contradiction the union of the contributing
//!    sets is an infeasible subset — usually a small fraction of the
//!    asserted constraints, at a cost linear in the propagation work.
//! 2. **Deletion-based minimisation** ([`minimize_core`]) shrinks a core to
//!    a *minimal* one (every proper subset feasible w.r.t. the given
//!    checker) by attempting to drop each member once.  Checkers are
//!    provided for bound propagation, rational simplex and budgeted integer
//!    feasibility; dropping a constraint is only allowed when the remainder
//!    is *proven* infeasible, so a checker that gives up (resource-out)
//!    keeps the constraint and the explanation stays sound.
//!
//! Soundness invariant used by the learner: any superset of an infeasible
//! set is infeasible, so every core returned here — minimal or not — yields
//! a valid learned clause.

use crate::intfeas::{solve_integer, IntFeasConfig, IntFeasResult};
use crate::rational::Rat;
use crate::simplex::{check_feasibility, Rel, SimplexConstraint};
use crate::term::{LinExpr, Var};

/// Fixpoint round cap.  Higher than [`crate::bounds`]' own cap because the
/// CDCL engine's *incremental* worklist propagation can reach a deeper
/// fixpoint than 12 from-scratch rounds; the explanation pass must be at
/// least as strong as the detector or conflicts would lose their cores.
/// The loop exits on convergence, so the cap only bounds pathologies.
const MAX_ROUNDS: usize = 64;

/// A compact set of constraint indices — the per-bound provenance carried
/// through tracked propagation and the divisibility elimination.  A word
/// bitset: unions are a few `u64` ORs instead of a sorted-vector merge,
/// which is what keeps per-conflict explanation cost flat as the theory
/// stack grows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReasonSet {
    words: Vec<u64>,
}

impl ReasonSet {
    /// The empty set.
    pub fn new() -> ReasonSet {
        ReasonSet::default()
    }

    /// The singleton `{i}`.
    pub fn singleton(i: u32) -> ReasonSet {
        let mut set = ReasonSet::new();
        set.insert(i);
        set
    }

    /// Adds an index.
    pub fn insert(&mut self, i: u32) {
        let word = (i / 64) as usize;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (i % 64);
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &ReasonSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// The members as sorted indices.
    pub fn to_indices(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (wi, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(wi * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }
}

pub(crate) type Reasons = ReasonSet;

/// The union of two reason sets (shared with [`crate::eqelim`]).
pub(crate) fn union(a: &Reasons, b: &Reasons) -> Reasons {
    let mut out = a.clone();
    out.union_with(b);
    out
}

/// Interval propagation with per-bound provenance.  Bounds live in dense
/// per-variable slots (variables are dense indices) — the tracked pass runs
/// once per conflict over the whole theory stack, so constant-time slot
/// access matters more than sparsity.
#[derive(Default)]
struct TrackedEnv {
    lo: Vec<Option<(Rat, Reasons)>>,
    hi: Vec<Option<(Rat, Reasons)>>,
}

impl TrackedEnv {
    fn lo_of(&self, v: Var) -> Option<&(Rat, Reasons)> {
        self.lo.get(v.index()).and_then(Option::as_ref)
    }

    fn hi_of(&self, v: Var) -> Option<&(Rat, Reasons)> {
        self.hi.get(v.index()).and_then(Option::as_ref)
    }

    fn set(slots: &mut Vec<Option<(Rat, Reasons)>>, v: Var, entry: (Rat, Reasons)) {
        if v.index() >= slots.len() {
            slots.resize(v.index() + 1, None);
        }
        slots[v.index()] = Some(entry);
    }

    /// Lower bound of `expr` with the reasons it rests on (`None` = −∞).
    fn expr_min(&self, expr: &LinExpr, excluded: Option<Var>) -> Option<(Rat, Reasons)> {
        let mut total = Rat::from_int(expr.constant_part());
        let mut reasons = Reasons::new();
        for (v, c) in expr.terms() {
            if excluded == Some(v) {
                continue;
            }
            let entry = if c > 0 { self.lo_of(v) } else { self.hi_of(v) };
            let (bound, r) = entry?;
            total += *bound * Rat::from_int(c);
            reasons.union_with(r);
        }
        Some((total, reasons))
    }

    /// Propagates `expr ≤ 0` (constraint index `ci`); `Ok(changed)` or the
    /// conflict core on contradiction.
    fn assert_le(&mut self, ci: u32, expr: &LinExpr) -> Result<bool, Reasons> {
        if let Some((min, mut reasons)) = self.expr_min(expr, None) {
            if min.is_positive() {
                reasons.insert(ci);
                return Err(reasons);
            }
        }
        let mut changed = false;
        for (v, c) in expr.terms() {
            let Some((rest_min, mut reasons)) = self.expr_min(expr, Some(v)) else {
                continue;
            };
            reasons.insert(ci);
            let bound = -rest_min / Rat::from_int(c);
            if c > 0 {
                // v ≤ ⌊bound⌋ over the integers
                let value = Rat::from_int(bound.floor());
                if value < Rat::from_int(-crate::bounds::MAGNITUDE_LIMIT) {
                    continue; // magnitude guard, mirrors `crate::bounds`
                }
                let tightens = match self.hi_of(v) {
                    Some((current, _)) => *current > value,
                    None => true,
                };
                if tightens {
                    Self::set(&mut self.hi, v, (value, reasons));
                    changed = true;
                }
            } else {
                let value = Rat::from_int(bound.ceil());
                if value > Rat::from_int(crate::bounds::MAGNITUDE_LIMIT) {
                    continue;
                }
                let tightens = match self.lo_of(v) {
                    Some((current, _)) => *current < value,
                    None => true,
                };
                if tightens {
                    Self::set(&mut self.lo, v, (value, reasons));
                    changed = true;
                }
            }
            if let (Some((lo, rl)), Some((hi, rh))) = (self.lo_of(v), self.hi_of(v)) {
                if lo > hi {
                    return Err(union(rl, rh));
                }
            }
        }
        Ok(changed)
    }

    fn assert_one(&mut self, ci: u32, constraint: &SimplexConstraint) -> Result<bool, Reasons> {
        match constraint.rel {
            Rel::Le => self.assert_le(ci, &constraint.expr),
            Rel::Ge => self.assert_le(ci, &negate(&constraint.expr)),
            Rel::Eq => {
                let a = self.assert_le(ci, &constraint.expr)?;
                let b = self.assert_le(ci, &negate(&constraint.expr))?;
                Ok(a || b)
            }
        }
    }
}

/// `−expr` without consuming it (shared with [`crate::eqelim`]).
pub(crate) fn negate(expr: &LinExpr) -> LinExpr {
    -expr.clone()
}

/// Runs tracked interval propagation; on refutation returns the indices of
/// an infeasible subset of `constraints` (sorted), `None` if propagation
/// cannot refute the conjunction.
pub fn bound_conflict_core(constraints: &[SimplexConstraint]) -> Option<Vec<usize>> {
    let mut env = TrackedEnv::default();
    for _ in 0..MAX_ROUNDS {
        let mut changed = false;
        for (i, c) in constraints.iter().enumerate() {
            match env.assert_one(i as u32, c) {
                Ok(ch) => changed |= ch,
                Err(core) => return Some(core.to_indices()),
            }
        }
        if !changed {
            break;
        }
    }
    None
}

/// Runs tracked propagation to a fixpoint and returns the variables pinned
/// to a single integer value, each with the indices of the constraints
/// that pinned it.  Assumes the conjunction is bound-consistent (callers
/// check first); on an unexpected refutation the map built so far is
/// returned.
pub fn fixed_reasons(constraints: &[SimplexConstraint]) -> crate::eqelim::FixedVars {
    let mut env = TrackedEnv::default();
    'rounds: for _ in 0..MAX_ROUNDS {
        let mut changed = false;
        for (i, c) in constraints.iter().enumerate() {
            match env.assert_one(i as u32, c) {
                Ok(ch) => changed |= ch,
                Err(_) => break 'rounds,
            }
        }
        if !changed {
            break;
        }
    }
    let mut out = crate::eqelim::FixedVars::new();
    for (i, entry) in env.lo.iter().enumerate() {
        let Some((lo, rl)) = entry else { continue };
        let Some((hi, rh)) = env.hi.get(i).and_then(Option::as_ref) else {
            continue;
        };
        if lo == hi {
            if let Some(value) = lo.to_integer() {
                out.insert(Var(i), (value, union(rl, rh)));
            }
        }
    }
    out
}

/// `true` iff bound propagation alone refutes the conjunction.
pub fn bound_infeasible(constraints: &[SimplexConstraint]) -> bool {
    crate::bounds::BoundEnv::from_constraints(constraints).1 == crate::bounds::BoundOutcome::Refuted
}

/// `true` iff the conjunction is provably infeasible over ℤ by interval
/// propagation or the rational simplex — the mid-strength checker of the
/// deletion-minimisation family (between [`bound_infeasible`] and
/// [`integer_infeasible`]).  A cheap bound-propagation pre-pass (linear,
/// no pivoting) runs first, so the simplex only pivots when intervals
/// alone cannot refute.  The pre-pass rounds to integers, so this checker
/// is *integer*-sound rather than rational-exact — fine for every
/// [`minimize_core`] use, whose soundness contract is ℤ-infeasibility
/// (the solver's semantics); do not use it to certify that a *rational*
/// Farkas certificate exists.  The engine's built-in conflict paths
/// currently pick the two ends of the family; this one is part of the
/// public minimisation toolkit (exercised by the unit tests).
pub fn rational_infeasible(constraints: &[SimplexConstraint]) -> bool {
    bound_infeasible(constraints) || !check_feasibility(constraints).is_feasible()
}

/// `true` iff budgeted branch-and-bound *proves* integer infeasibility
/// (resource-outs count as "could not prove", keeping minimisation sound).
pub fn integer_infeasible(constraints: &[SimplexConstraint], budget: usize) -> bool {
    let config = IntFeasConfig {
        max_nodes: budget,
        ..IntFeasConfig::default()
    };
    matches!(solve_integer(constraints, &config), IntFeasResult::Unsat)
}

/// Shrinks a core to a fixpoint of its own extractor: re-running the
/// (tracked) core computation on the core *subset* usually collapses it to
/// a handful of constraints in one or two passes, after which the
/// per-member deletion loop of [`minimize_core`] only has a few candidates
/// left.  Sound because a tracked core is itself refutable by the same
/// procedure — every recorded bound carries the constraints that produced
/// it — so each pass yields a genuine infeasible subset.
pub fn shrink_core(
    constraints: &[SimplexConstraint],
    mut core: Vec<usize>,
    extract: &dyn Fn(&[SimplexConstraint]) -> Option<Vec<usize>>,
) -> Vec<usize> {
    loop {
        let subset: Vec<SimplexConstraint> = core.iter().map(|&i| constraints[i].clone()).collect();
        match extract(&subset) {
            Some(sub) if sub.len() < core.len() => {
                core = sub.into_iter().map(|j| core[j]).collect();
            }
            _ => return core,
        }
    }
}

/// Deletion-based minimisation: drops every core member whose removal keeps
/// the subset infeasible according to `infeasible`.  The result is minimal
/// w.r.t. the checker (and still infeasible, hence a sound explanation).
pub fn minimize_core(
    constraints: &[SimplexConstraint],
    core: Vec<usize>,
    infeasible: &dyn Fn(&[SimplexConstraint]) -> bool,
) -> Vec<usize> {
    minimize_core_budgeted(constraints, core, infeasible, usize::MAX)
}

/// [`minimize_core`] with a cap on the number of deletion attempts: only
/// the last `budget` members (the deepest, usually highest-decision-level
/// ones, whose removal most improves the backjump) are tried.  An
/// unminimised remainder is still a sound explanation, so spending a
/// bounded amount of work per conflict trades a slightly longer learned
/// clause for a much cheaper conflict loop.
pub fn minimize_core_budgeted(
    constraints: &[SimplexConstraint],
    mut core: Vec<usize>,
    infeasible: &dyn Fn(&[SimplexConstraint]) -> bool,
    budget: usize,
) -> Vec<usize> {
    // drop later (deeper, usually higher-decision-level) members first so
    // the surviving clause prefers literals from low decision levels and
    // the learner backjumps further
    let mut attempts = 0usize;
    let mut i = core.len();
    while i > 0 && attempts < budget {
        i -= 1;
        if core.len() <= 1 {
            break;
        }
        attempts += 1;
        let candidate: Vec<SimplexConstraint> = core
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &k)| constraints[k].clone())
            .collect();
        if infeasible(&candidate) {
            core.remove(i);
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarPool;

    fn le(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Le }
    }

    fn ge(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Ge }
    }

    #[test]
    fn core_excludes_irrelevant_constraints() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let z = pool.fresh("z");
        // x ≥ 3 ∧ x ≤ 2 clash; the z constraints are noise
        let constraints = vec![
            ge(LinExpr::var(z)),
            ge(LinExpr::var(x) - LinExpr::constant(3)),
            le(LinExpr::var(z) - LinExpr::constant(9)),
            le(LinExpr::var(x) - LinExpr::constant(2)),
            ge(LinExpr::var(y) - LinExpr::var(z)),
        ];
        let core = bound_conflict_core(&constraints).expect("refutable");
        assert!(core.contains(&1) && core.contains(&3), "core {core:?}");
        assert!(!core.contains(&0) && !core.contains(&2) && !core.contains(&4));
    }

    #[test]
    fn transitive_chain_core_is_complete() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // x ≥ 3, y ≥ x, y ≤ 2: all three constraints are needed
        let constraints = vec![
            ge(LinExpr::var(x) - LinExpr::constant(3)),
            ge(LinExpr::var(y) - LinExpr::var(x)),
            le(LinExpr::var(y) - LinExpr::constant(2)),
        ];
        let core = bound_conflict_core(&constraints).expect("refutable");
        let minimal = minimize_core(&constraints, core, &bound_infeasible);
        assert_eq!(minimal, vec![0, 1, 2]);
    }

    #[test]
    fn minimisation_shrinks_padded_cores() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let constraints = vec![
            ge(LinExpr::var(x) - LinExpr::constant(5)),
            ge(LinExpr::var(x) - LinExpr::constant(1)), // implied by the first
            le(LinExpr::var(x) - LinExpr::constant(3)),
        ];
        let minimal = minimize_core(&constraints, vec![0, 1, 2], &bound_infeasible);
        assert_eq!(minimal.len(), 2);
        assert!(minimal.contains(&0) && minimal.contains(&2));
    }

    #[test]
    fn feasible_sets_have_no_core() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let constraints = vec![
            ge(LinExpr::var(x)),
            le(LinExpr::var(x) - LinExpr::constant(5)),
        ];
        assert!(bound_conflict_core(&constraints).is_none());
        assert!(!bound_infeasible(&constraints));
        assert!(!rational_infeasible(&constraints));
        assert!(!integer_infeasible(&constraints, 100));
    }

    #[test]
    fn integer_checker_respects_budget_soundly() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        // 1 ≤ 3x ≤ 2: integrally infeasible, provable in a node or two
        let constraints = vec![
            ge(LinExpr::scaled_var(x, 3) - LinExpr::constant(1)),
            le(LinExpr::scaled_var(x, 3) - LinExpr::constant(2)),
        ];
        assert!(integer_infeasible(&constraints, 100));
        // zero budget cannot *prove* anything
        assert!(!integer_infeasible(&constraints, 0));
    }
}
