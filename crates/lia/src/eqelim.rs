//! Divisibility (GCD) refutation over the equality subsystem, with
//! explanations.
//!
//! The Parikh encodings of loopy languages produce integer conflicts that
//! neither interval propagation nor the rational simplex can see: flow
//! equations force a *parity* relation between counters (in `(ab)*` the
//! position of an `a` is even because `#a = #b` along the run prefix), and
//! an aligned-mismatch constraint then demands `2·s = 2·t + 1`.  The
//! conjunction is rationally feasible, every interval is open, and
//! branch-and-bound diverges along the unbounded counters — this is exactly
//! why the seed solver resource-outs on the flagship `x,y ∈ (ab)*`, `x ≠ y`,
//! `|x| = |y|` instance.
//!
//! The cure is classical: Gaussian elimination over ℤ restricted to
//! *unit-coefficient* pivots (substituting `v = −R` for an equation
//! `±v + R = 0` is always integrality-preserving), followed by a GCD test on
//! every derived equation `Σ cᵢxᵢ + k = 0`: if `g = gcd(cᵢ)` does not divide
//! `k`, the equation — an integer linear combination of asserted
//! constraints — has no integer solution, so neither has the conjunction.
//!
//! Equalities are recovered from split half-spaces: the CDCL clausifier
//! turns `e = 0` into the two literals `e ≤ 0` and `−e ≤ 0`
//! ([`crate::cnf`]), so the collector pairs complementary `≤`-forms back
//! into equations, attributing both constraint indices.  Every derived
//! equation carries the *reason set* of original constraint indices that
//! were combined into it; a GCD conflict therefore comes with a small core
//! that [`crate::cdcl`] learns as a clause, and [`crate::intfeas`] uses the
//! same test to refute parity-infeasible conjunctions before attempting
//! branch-and-bound.

use std::collections::{BTreeMap, HashMap};

use crate::explain::{negate, union, Reasons};
use crate::simplex::{Rel, SimplexConstraint};
use crate::term::{LinExpr, Var};

/// A variable pinned to an integer value, with the indices of the
/// constraints responsible (empty when the caller does not need
/// explanations, e.g. branch-and-bound pruning).
pub type FixedVars = BTreeMap<Var, (i128, crate::explain::ReasonSet)>;

/// Fill-in cap: substitutions that would grow an equation beyond this many
/// terms are skipped (partial elimination stays sound, it only refutes
/// less).
const MAX_TERMS: usize = 64;

/// Cap on the number of pivot eliminations (backstop for degenerate
/// systems; the flow systems of the encodings stay far below it).
const MAX_PIVOTS: usize = 512;

use crate::rational::gcd;

/// `true` if the single equation `expr = 0` has no integer solution:
/// either it is a non-zero constant, or the GCD of its coefficients does
/// not divide its constant part.
fn equation_infeasible(expr: &LinExpr) -> bool {
    let mut g: i128 = 0;
    for (_, c) in expr.terms() {
        g = gcd(g, c);
    }
    let k = expr.constant_part();
    if g == 0 {
        k != 0
    } else {
        k % g != 0
    }
}

/// Substitutes the pinned variables of `fixed` into `expr`, accumulating
/// the fixing constraints into `reasons`.  All arithmetic is *checked*:
/// a learned clause from a wrapped coefficient would be unsound in release
/// builds (where plain `i128` ops wrap silently), so on overflow the
/// substitution is abandoned (`None`) and the caller drops the equation —
/// sound, just less complete.
fn substitute_fixed(expr: &LinExpr, fixed: &FixedVars, reasons: &mut Reasons) -> Option<LinExpr> {
    if fixed.is_empty() {
        return Some(expr.clone());
    }
    let mut constant = expr.constant_part();
    let mut out = LinExpr::zero();
    for (v, c) in expr.terms() {
        match fixed.get(&v) {
            Some((value, why)) => {
                constant = constant.checked_add(c.checked_mul(*value)?)?;
                reasons.union_with(why);
            }
            None => out.add_term(v, c),
        }
    }
    Some(out + LinExpr::constant(constant))
}

/// `eq − factor·pivot` with checked arithmetic; `None` on overflow (the
/// elimination step is skipped, see [`substitute_fixed`]).
fn combine_checked(eq: &LinExpr, pivot: &LinExpr, factor: i128) -> Option<LinExpr> {
    let constant = eq
        .constant_part()
        .checked_sub(pivot.constant_part().checked_mul(factor)?)?;
    let mut out = LinExpr::constant(constant);
    for (v, c) in eq.terms() {
        out.add_term(v, c);
    }
    for (v, c) in pivot.terms() {
        let neg_delta = c.checked_mul(factor)?.checked_neg()?;
        // the combined coefficient must itself fit
        out.coeff(v).checked_add(neg_delta)?;
        out.add_term(v, neg_delta);
    }
    Some(out)
}

/// Collects the equality subsystem: explicit `Rel::Eq` constraints plus
/// complementary pairs of `≤`-forms (`e ≤ 0` together with `−e ≤ 0`),
/// with the `fixed` variables substituted out first (interval propagation
/// pins e.g. the 0/1 mismatch counters, and only then do the flow
/// equations expose their parity).
fn collect_equations(
    constraints: &[SimplexConstraint],
    fixed: &FixedVars,
) -> Vec<(LinExpr, Reasons)> {
    let mut eqs: Vec<(LinExpr, Reasons)> = Vec::new();
    let mut le_seen: HashMap<LinExpr, (u32, Reasons)> = HashMap::new();
    for (i, c) in constraints.iter().enumerate() {
        let i = i as u32;
        let mut reasons = Reasons::singleton(i);
        match c.rel {
            Rel::Eq => {
                if let Some(e) = substitute_fixed(&c.expr, fixed, &mut reasons) {
                    eqs.push((e, reasons));
                }
            }
            Rel::Le | Rel::Ge => {
                let raw = if c.rel == Rel::Le {
                    c.expr.clone()
                } else {
                    negate(&c.expr)
                };
                let Some(e) = substitute_fixed(&raw, fixed, &mut reasons) else {
                    continue;
                };
                if let Some((_, other_reasons)) = le_seen.get(&negate(&e)) {
                    // e ≤ 0 ∧ −e ≤ 0 ⟺ e = 0
                    eqs.push((e.clone(), union(&reasons, other_reasons)));
                }
                le_seen.entry(e).or_insert((i, reasons));
            }
        }
    }
    eqs
}

/// [`conflict_core_fixed`] without pinned variables.
pub fn conflict_core(constraints: &[SimplexConstraint]) -> Option<Vec<usize>> {
    conflict_core_fixed(constraints, &FixedVars::new())
}

/// Runs unit-pivot elimination with GCD tests over the equality subsystem,
/// substituting the pinned variables of `fixed` first.  On refutation
/// returns the indices of an infeasible subset of `constraints` (sorted);
/// `None` if no divisibility conflict was derived.
pub fn conflict_core_fixed(
    constraints: &[SimplexConstraint],
    fixed: &FixedVars,
) -> Option<Vec<usize>> {
    let mut eqs = collect_equations(constraints, fixed);
    for (e, reasons) in &eqs {
        if equation_infeasible(e) {
            return Some(reasons.to_indices());
        }
    }
    let mut used = vec![false; eqs.len()];
    let mut pivots = 0usize;
    for p in 0..eqs.len() {
        if used[p] || pivots >= MAX_PIVOTS {
            continue;
        }
        // a unit-coefficient variable to eliminate
        let Some((var, a)) = eqs[p].0.terms().find(|&(_, c)| c == 1 || c == -1) else {
            continue;
        };
        used[p] = true;
        pivots += 1;
        let (pivot_expr, pivot_reasons) = eqs[p].clone();
        for q in 0..eqs.len() {
            if q == p || used[q] {
                continue;
            }
            let c = eqs[q].0.coeff(var);
            if c == 0 {
                continue;
            }
            // E_q − (c·a)·E_p eliminates `var` (a² = 1); checked arithmetic
            // throughout — a silently wrapped coefficient would turn the
            // GCD test into an unsound refutation in release builds
            let Some(factor) = c.checked_mul(a) else {
                continue;
            };
            let Some(derived) = combine_checked(&eqs[q].0, &pivot_expr, factor) else {
                continue; // skip: overflow (sound, just less complete)
            };
            if derived.terms().count() > MAX_TERMS {
                continue; // skip: fill-in cap (sound, just less complete)
            }
            let reasons = union(&eqs[q].1, &pivot_reasons);
            if equation_infeasible(&derived) {
                return Some(reasons.to_indices());
            }
            eqs[q] = (derived, reasons);
        }
    }
    None
}

/// `true` iff the elimination derives a divisibility conflict.
pub fn infeasible(constraints: &[SimplexConstraint]) -> bool {
    conflict_core(constraints).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarPool;

    fn le(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Le }
    }

    fn ge(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Ge }
    }

    fn eq(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Eq }
    }

    #[test]
    fn single_equation_gcd_conflict() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // 2x + 2y = 1
        let constraints = vec![eq(
            LinExpr::scaled_var(x, 2) + LinExpr::scaled_var(y, 2) - LinExpr::constant(1)
        )];
        assert_eq!(conflict_core(&constraints), Some(vec![0]));
    }

    #[test]
    fn parity_through_elimination() {
        let mut pool = VarPool::new();
        let p = pool.fresh("p");
        let q = pool.fresh("q");
        let s = pool.fresh("s");
        let t = pool.fresh("t");
        // p = 2s, q = 2t, p = q + 1: rationally feasible, integrally empty;
        // needs two eliminations before the gcd test fires
        let constraints = vec![
            eq(LinExpr::var(p) - LinExpr::scaled_var(s, 2)),
            eq(LinExpr::var(q) - LinExpr::scaled_var(t, 2)),
            eq(LinExpr::var(p) - LinExpr::var(q) - LinExpr::constant(1)),
        ];
        let core = conflict_core(&constraints).expect("parity conflict");
        assert_eq!(core, vec![0, 1, 2], "all three equations participate");
    }

    #[test]
    fn split_half_spaces_recombine_into_equations() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // the clausifier's split form of x = 2y and x = 2y + 1… via x−2y ≤ 0,
        // x−2y ≥ 0, and an explicit second equation
        let e = LinExpr::var(x) - LinExpr::scaled_var(y, 2);
        let constraints = vec![le(e.clone()), ge(e.clone()), eq(e - LinExpr::constant(1))];
        let core = conflict_core(&constraints).expect("conflict");
        assert_eq!(core, vec![0, 1, 2]);
    }

    #[test]
    fn feasible_systems_are_left_alone() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let constraints = vec![
            eq(LinExpr::var(x) - LinExpr::scaled_var(y, 2)),
            ge(LinExpr::var(y)),
            le(LinExpr::var(x) - LinExpr::constant(10)),
        ];
        assert_eq!(conflict_core(&constraints), None);
        assert!(!infeasible(&constraints));
    }

    #[test]
    fn irrelevant_equations_stay_out_of_the_core() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let z = pool.fresh("z");
        let w = pool.fresh("w");
        let constraints = vec![
            eq(LinExpr::var(z) - LinExpr::var(w)), // noise
            eq(LinExpr::scaled_var(x, 2) - LinExpr::constant(5)),
        ];
        let core = conflict_core(&constraints).expect("2x = 5 conflict");
        assert_eq!(core, vec![1]);
    }

    #[test]
    fn inconsistent_constants_after_elimination() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // x = y + 1 and x = y (as split halves): derives 0 = 1
        let d = LinExpr::var(x) - LinExpr::var(y);
        let constraints = vec![eq(d.clone() - LinExpr::constant(1)), le(d.clone()), ge(d)];
        let core = conflict_core(&constraints).expect("0 = 1");
        assert_eq!(core.len(), 3);
    }
}
