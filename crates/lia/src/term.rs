//! Integer variables and linear expressions.
//!
//! A [`Var`] is a dense index into a [`VarPool`] which remembers a
//! human-readable name for every variable (e.g. `#⟨L,x⟩`, `#δ_17`, `γI_q3`).
//! A [`LinExpr`] is an integer-coefficient linear combination of variables
//! plus a constant; it is the only term language needed by the reductions of
//! the paper.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// An integer variable, identified by a dense index into its [`VarPool`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub usize);

impl Var {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An allocator of integer variables that remembers their names.
///
/// ```
/// use posr_lia::term::VarPool;
/// let mut pool = VarPool::new();
/// let x = pool.fresh("x");
/// assert_eq!(pool.name(x), "x");
/// assert_eq!(pool.len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct VarPool {
    names: Vec<String>,
    by_name: BTreeMap<String, Var>,
}

impl VarPool {
    /// Creates an empty pool.
    pub fn new() -> VarPool {
        VarPool::default()
    }

    /// Allocates a fresh variable with the given name.  If the name is
    /// already taken, a numeric suffix is appended to keep names unique.
    pub fn fresh(&mut self, name: &str) -> Var {
        let mut unique = name.to_string();
        let mut counter = 1;
        while self.by_name.contains_key(&unique) {
            unique = format!("{name}#{counter}");
            counter += 1;
        }
        let var = Var(self.names.len());
        self.names.push(unique.clone());
        self.by_name.insert(unique, var);
        var
    }

    /// Returns the variable registered under `name`, allocating it if needed.
    pub fn named(&mut self, name: &str) -> Var {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let var = Var(self.names.len());
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), var);
        var
    }

    /// Looks up a variable by name without allocating.
    pub fn lookup(&self, name: &str) -> Option<Var> {
        self.by_name.get(name).copied()
    }

    /// The name of a variable.
    ///
    /// # Panics
    /// Panics if the variable does not belong to this pool.
    pub fn name(&self, var: Var) -> &str {
        &self.names[var.0]
    }

    /// Number of variables allocated so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no variable has been allocated.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterator over all variables in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.names.len()).map(Var)
    }
}

/// A linear expression `Σ coeff·var + constant` with integer coefficients.
///
/// ```
/// use posr_lia::term::{LinExpr, VarPool};
/// let mut pool = VarPool::new();
/// let x = pool.fresh("x");
/// let y = pool.fresh("y");
/// let e = LinExpr::var(x) * 2 + LinExpr::var(y) - LinExpr::constant(3);
/// assert_eq!(e.coeff(x), 2);
/// assert_eq!(e.constant_part(), -3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct LinExpr {
    /// Coefficients per variable; zero coefficients are never stored.
    coeffs: BTreeMap<Var, i128>,
    constant: i128,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// The constant expression `k`.
    pub fn constant(k: i128) -> LinExpr {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: k,
        }
    }

    /// The expression `1·v`.
    pub fn var(v: Var) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, 1);
        LinExpr {
            coeffs,
            constant: 0,
        }
    }

    /// The expression `c·v`.
    pub fn scaled_var(v: Var, c: i128) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        if c != 0 {
            coeffs.insert(v, c);
        }
        LinExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Sum of `1·v` over the given variables.
    pub fn sum_of_vars<I: IntoIterator<Item = Var>>(vars: I) -> LinExpr {
        let mut e = LinExpr::zero();
        for v in vars {
            e.add_term(v, 1);
        }
        e
    }

    /// Adds `c·v` in place.
    pub fn add_term(&mut self, v: Var, c: i128) {
        let entry = self.coeffs.entry(v).or_insert(0);
        *entry += c;
        if *entry == 0 {
            self.coeffs.remove(&v);
        }
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, k: i128) {
        self.constant += k;
    }

    /// Coefficient of a variable (0 if absent).
    pub fn coeff(&self, v: Var) -> i128 {
        self.coeffs.get(&v).copied().unwrap_or(0)
    }

    /// The constant part.
    pub fn constant_part(&self) -> i128 {
        self.constant
    }

    /// Iterator over `(variable, coefficient)` pairs with non-zero coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (Var, i128)> + '_ {
        self.coeffs.iter().map(|(&v, &c)| (v, c))
    }

    /// The set of variables with non-zero coefficient.
    pub fn variables(&self) -> impl Iterator<Item = Var> + '_ {
        self.coeffs.keys().copied()
    }

    /// Returns `true` if the expression is a constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Number of variable terms.
    pub fn num_terms(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates the expression under an assignment (missing variables count
    /// as 0).
    pub fn eval(&self, assignment: &dyn Fn(Var) -> i128) -> i128 {
        let mut total = self.constant;
        for (&v, &c) in &self.coeffs {
            total += c * assignment(v);
        }
        total
    }

    /// Substitutes a variable by a linear expression, returning the result.
    pub fn substitute(&self, var: Var, replacement: &LinExpr) -> LinExpr {
        let c = self.coeff(var);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.coeffs.remove(&var);
        out += replacement.clone() * c;
        out
    }

    /// Renders the expression with variable names from a pool.
    pub fn display<'a>(&'a self, pool: &'a VarPool) -> impl fmt::Display + 'a {
        struct D<'a>(&'a LinExpr, &'a VarPool);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let mut first = true;
                for (v, c) in self.0.terms() {
                    if first {
                        if c == 1 {
                            write!(f, "{}", self.1.name(v))?;
                        } else if c == -1 {
                            write!(f, "-{}", self.1.name(v))?;
                        } else {
                            write!(f, "{c}·{}", self.1.name(v))?;
                        }
                        first = false;
                    } else if c >= 0 {
                        if c == 1 {
                            write!(f, " + {}", self.1.name(v))?;
                        } else {
                            write!(f, " + {c}·{}", self.1.name(v))?;
                        }
                    } else if c == -1 {
                        write!(f, " - {}", self.1.name(v))?;
                    } else {
                        write!(f, " - {}·{}", -c, self.1.name(v))?;
                    }
                }
                let k = self.0.constant_part();
                if first {
                    write!(f, "{k}")?;
                } else if k > 0 {
                    write!(f, " + {k}")?;
                } else if k < 0 {
                    write!(f, " - {}", -k)?;
                }
                Ok(())
            }
        }
        D(self, pool)
    }
}

impl From<i128> for LinExpr {
    fn from(k: i128) -> LinExpr {
        LinExpr::constant(k)
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> LinExpr {
        LinExpr::var(v)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.coeffs {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        *self = std::mem::take(self) + rhs;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        *self = std::mem::take(self) - rhs;
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for c in self.coeffs.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<i128> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: i128) -> LinExpr {
        if rhs == 0 {
            return LinExpr::zero();
        }
        for c in self.coeffs.values_mut() {
            *c *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_allocates_unique_names() {
        let mut pool = VarPool::new();
        let a = pool.fresh("x");
        let b = pool.fresh("x");
        assert_ne!(a, b);
        assert_eq!(pool.name(a), "x");
        assert_ne!(pool.name(b), "x");
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn named_is_idempotent() {
        let mut pool = VarPool::new();
        let a = pool.named("len_x");
        let b = pool.named("len_x");
        assert_eq!(a, b);
        assert_eq!(pool.lookup("len_x"), Some(a));
        assert_eq!(pool.lookup("other"), None);
    }

    #[test]
    fn linear_expression_arithmetic() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let e = LinExpr::var(x) * 2 + LinExpr::var(y) * 3 + LinExpr::constant(1);
        let f = LinExpr::var(x) - LinExpr::constant(4);
        let sum = e.clone() + f.clone();
        assert_eq!(sum.coeff(x), 3);
        assert_eq!(sum.coeff(y), 3);
        assert_eq!(sum.constant_part(), -3);
        let diff = e - f;
        assert_eq!(diff.coeff(x), 1);
        assert_eq!(diff.constant_part(), 5);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let e = LinExpr::var(x) - LinExpr::var(x);
        assert!(e.is_constant());
        assert_eq!(e.num_terms(), 0);
    }

    #[test]
    fn evaluation() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let e = LinExpr::var(x) * 2 + LinExpr::var(y) - LinExpr::constant(1);
        let val = e.eval(&|v| if v == x { 3 } else { 10 });
        assert_eq!(val, 2 * 3 + 10 - 1);
    }

    #[test]
    fn substitution() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let e = LinExpr::var(x) * 2 + LinExpr::constant(1);
        let sub = e.substitute(x, &(LinExpr::var(y) + LinExpr::constant(5)));
        assert_eq!(sub.coeff(y), 2);
        assert_eq!(sub.constant_part(), 11);
    }

    #[test]
    fn sum_of_vars_collects_duplicates() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let e = LinExpr::sum_of_vars(vec![x, y, x]);
        assert_eq!(e.coeff(x), 2);
        assert_eq!(e.coeff(y), 1);
    }

    #[test]
    fn display_with_names() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let e = LinExpr::var(x) * 2 - LinExpr::var(y) + LinExpr::constant(7);
        assert_eq!(format!("{}", e.display(&pool)), "2·x - y + 7");
        assert_eq!(format!("{}", LinExpr::constant(-3).display(&pool)), "-3");
    }
}
