//! Exact rational arithmetic over `i128`.
//!
//! The simplex feasibility checker works over the rationals.  The offline
//! dependency set available to this repository contains no big-integer crate,
//! so rationals are represented with `i128` numerator/denominator; every
//! arithmetic operation checks for overflow and panics with a recognisable
//! message on overflow.  The top-level solver catches this panic and reports
//! a *resource-out* instead of an incorrect answer (see
//! `posr_lia::solver::Solver::solve`).  On every workload shipped in this
//! repository the coefficients stay far below the overflow threshold.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Message used by arithmetic overflow panics; the solver recognises it when
/// converting panics to resource-limit results.
pub const OVERFLOW_MSG: &str = "posr-lia rational overflow";

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) = 1`.
///
/// ```
/// use posr_lia::rational::Rat;
/// let a = Rat::new(1, 3);
/// let b = Rat::new(1, 6);
/// assert_eq!(a + b, Rat::new(1, 2));
/// assert!(a > b);
/// assert_eq!(Rat::from_int(2).floor(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rat {
    num: i128,
    den: i128,
}

pub(crate) fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[inline]
fn checked(v: Option<i128>) -> i128 {
    v.unwrap_or_else(|| panic!("{OVERFLOW_MSG}"))
}

impl Rat {
    /// The rational 0.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The rational 1.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates the rational `num / den` in lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let num = checked(num.checked_mul(sign));
        let den = checked(den.checked_mul(sign));
        let g = gcd(num, den);
        if g == 0 {
            Rat { num: 0, den: 1 }
        } else {
            Rat {
                num: num / g,
                den: den / g,
            }
        }
    }

    /// Creates the rational `n / 1`.
    pub fn from_int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Numerator (after normalisation; carries the sign).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Largest integer `<= self`.
    pub fn floor(self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            -((-self.num + self.den - 1) / self.den)
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(self) -> i128 {
        if self.num >= 0 {
            (self.num + self.den - 1) / self.den
        } else {
            -((-self.num) / self.den)
        }
    }

    /// Converts to `i128` if the value is an integer.
    pub fn to_integer(self) -> Option<i128> {
        if self.is_integer() {
            Some(self.num)
        } else {
            None
        }
    }

    /// Absolute value.
    pub fn abs(self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }
}

impl Default for Rat {
    fn default() -> Rat {
        Rat::ZERO
    }
}

impl From<i128> for Rat {
    fn from(n: i128) -> Rat {
        Rat::from_int(n)
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::from_int(n as i128)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        // fast paths for the shapes the simplex row updates produce: the
        // coefficients of automata-derived rows are integers almost
        // everywhere, and equal denominators appear whenever a row is
        // scaled once and then accumulated
        if self.den == rhs.den {
            let num = checked(self.num.checked_add(rhs.num));
            if self.den == 1 {
                // integers stay integers: no gcd, no renormalisation
                return Rat { num, den: 1 };
            }
            // shared denominator: only the numerator sum can introduce a
            // common factor, and it divides the (already reduced) den
            let g = gcd(num, self.den);
            return Rat {
                num: num / g,
                den: self.den / g,
            };
        }
        let num = checked(
            checked(self.num.checked_mul(rhs.den))
                .checked_add(checked(rhs.num.checked_mul(self.den))),
        );
        let den = checked(self.den.checked_mul(rhs.den));
        Rat::new(num, den)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // ±1 are by far the most common row coefficients (every automaton
        // transition contributes a unit entry); neither needs arithmetic
        if rhs.den == 1 {
            match rhs.num {
                1 => return self,
                -1 => return -self,
                _ => {}
            }
        }
        if self.den == 1 {
            match self.num {
                1 => return rhs,
                -1 => return -rhs,
                _ => {}
            }
        }
        // cross-gcd reduction: divide each numerator by its gcd with the
        // *other* denominator before multiplying.  The products are then
        // already in lowest terms (both fractions are reduced), skipping
        // the final gcd — and intermediate magnitudes shrink, so products
        // whose reduced result fits in `i128` no longer overflow spuriously
        let ga = gcd(self.num, rhs.den);
        let gb = gcd(rhs.num, self.den);
        let (an, bd) = if ga > 1 {
            (self.num / ga, rhs.den / ga)
        } else {
            (self.num, rhs.den)
        };
        let (bn, ad) = if gb > 1 {
            (rhs.num / gb, self.den / gb)
        } else {
            (rhs.num, self.den)
        };
        Rat {
            num: checked(an.checked_mul(bn)),
            den: checked(ad.checked_mul(bd)),
        }
    }
}

impl Div for Rat {
    type Output = Rat;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via the reciprocal is exact here
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // equal denominators (integers in particular) compare directly —
        // the common case in bound checks, where bounds are integral
        if self.den == other.den {
            return self.num.cmp(&other.num);
        }
        // differing signs need no arithmetic either (dens are positive)
        let (s, o) = (self.num.signum(), other.num.signum());
        if s != o {
            return s.cmp(&o);
        }
        let lhs = checked(self.num.checked_mul(other.den));
        let rhs = checked(other.num.checked_mul(self.den));
        lhs.cmp(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 7), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 6);
        assert_eq!(a + b, Rat::new(1, 2));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 18));
        assert_eq!(a / b, Rat::from_int(2));
        assert_eq!(-a, Rat::new(-1, 3));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) > Rat::new(1, 4));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::from_int(3) >= Rat::new(6, 2));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::from_int(5).floor(), 5);
        assert_eq!(Rat::from_int(5).ceil(), 5);
    }

    #[test]
    fn integer_detection() {
        assert!(Rat::new(4, 2).is_integer());
        assert!(!Rat::new(5, 2).is_integer());
        assert_eq!(Rat::new(4, 2).to_integer(), Some(2));
        assert_eq!(Rat::new(5, 2).to_integer(), None);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "posr-lia rational overflow")]
    fn overflow_panics_with_marker() {
        let big = Rat::from_int(i128::MAX / 2);
        let _ = big * big;
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 6).to_string(), "1/2");
        assert_eq!(Rat::from_int(-4).to_string(), "-4");
    }

    /// The reference implementations the fast paths must agree with:
    /// textbook cross-multiplication with the final gcd normalisation.
    fn slow_add(a: Rat, b: Rat) -> Rat {
        Rat::new(a.num * b.den + b.num * a.den, a.den * b.den)
    }

    fn slow_mul(a: Rat, b: Rat) -> Rat {
        Rat::new(a.num * b.num, a.den * b.den)
    }

    #[test]
    fn fast_paths_agree_with_reference() {
        // a small splat of values covering every fast-path shape: shared
        // denominators, integers, ±1 factors, zero, mixed signs
        let mut vals = Vec::new();
        for num in -6i128..=6 {
            for den in 1i128..=4 {
                vals.push(Rat::new(num, den));
            }
        }
        for &a in &vals {
            for &b in &vals {
                assert_eq!(a + b, slow_add(a, b), "add {a} {b}");
                assert_eq!(a - b, slow_add(a, -b), "sub {a} {b}");
                assert_eq!(a * b, slow_mul(a, b), "mul {a} {b}");
                let expected = (a.num * b.den).cmp(&(b.num * a.den));
                assert_eq!(a.cmp(&b), expected, "cmp {a} {b}");
                if !b.is_zero() {
                    assert_eq!(a / b, slow_mul(a, b.recip()), "div {a} {b}");
                }
            }
        }
    }

    #[test]
    fn integer_add_at_the_overflow_boundary() {
        // the integer fast path must be exact right up to the edge...
        let almost = Rat::from_int(i128::MAX - 1);
        assert_eq!(almost + Rat::ONE, Rat::from_int(i128::MAX));
        assert_eq!(
            Rat::from_int(i128::MIN + 1) - Rat::ONE,
            Rat::from_int(i128::MIN)
        );
    }

    #[test]
    #[should_panic(expected = "posr-lia rational overflow")]
    fn integer_add_past_the_boundary_panics() {
        // ...and panic with the recognised marker one past it, so the
        // solver converts it to a resource-out rather than a wrong answer
        let _ = Rat::from_int(i128::MAX) + Rat::ONE;
    }

    #[test]
    fn cross_reduction_survives_products_the_naive_multiply_cannot() {
        // (MAX-1)/2 * 2/(MAX-1) = 1: the naive num*num product overflows,
        // the cross-gcd reduction cancels before multiplying
        let big = i128::MAX - 1;
        let a = Rat::new(big, 2);
        let b = Rat::new(2, big);
        assert_eq!(a * b, Rat::ONE);
        // a genuinely too-large product must still panic with the marker
        let r = std::panic::catch_unwind(|| Rat::from_int(big) * Rat::from_int(big));
        let msg = *r.unwrap_err().downcast::<String>().expect("panic message");
        assert!(msg.contains(OVERFLOW_MSG), "got {msg}");
    }

    #[test]
    fn shared_denominator_add_renormalises() {
        // 1/6 + 1/6 = 1/3: the shared-den fast path must still reduce
        assert_eq!(Rat::new(1, 6) + Rat::new(1, 6), Rat::new(1, 3));
        assert_eq!(Rat::new(1, 4) + Rat::new(-1, 4), Rat::ZERO);
        assert_eq!(Rat::new(3, 4) + Rat::new(3, 4), Rat::new(3, 2));
    }

    #[test]
    fn comparison_without_multiplication_is_exact_at_the_boundary() {
        // sign and equal-den fast paths keep cmp total where the cross
        // multiplication would overflow
        let huge = Rat::from_int(i128::MAX);
        let tiny = Rat::from_int(i128::MIN);
        assert!(tiny < huge);
        assert!(huge > Rat::ZERO);
        assert!(Rat::from_int(i128::MAX - 1) < huge);
    }
}
