//! Exact rational arithmetic over `i128`, with a big-integer slow lane.
//!
//! The simplex feasibility checker works over the rationals.  `Rat` stays
//! a `Copy` pair of `i128`s — the tableau hot paths depend on that — and
//! every operation first tries machine arithmetic.  On overflow the
//! operation falls back to a *slow lane* over the vendored
//! [`crate::bigint::BigInt`]: the exact intermediate is computed with
//! arbitrary precision, reduced by the gcd, and converted back to `i128`.
//! Deep product-automaton coefficients thus overflow only when the
//! *reduced result* genuinely needs more than 127 bits; comparisons never
//! overflow at all (they finish exactly in the slow lane).  A result that
//! truly cannot be represented panics with a recognisable message; the
//! solve entry points catch it and report a *resource-out* instead of an
//! incorrect answer (see `posr_lia::solver::Solver::solve`).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use std::sync::LazyLock;

use crate::bigint::BigInt;

/// Message used by arithmetic overflow panics; the solver recognises it when
/// converting panics to resource-limit results.
pub const OVERFLOW_MSG: &str = "posr-lia rational overflow";

/// Raises the overflow marker panic the solve entry points translate into
/// a clean `Unknown`.  Public so the fault-injection harness can simulate
/// an overflow on any path that is documented to absorb one.
pub fn overflow_panic() -> ! {
    panic!("{OVERFLOW_MSG}")
}

/// The `Unknown` reason every entry point reports for a caught overflow.
pub const OVERFLOW_UNKNOWN: &str = "arithmetic overflow in theory solver";

/// Runs `f`, translating an [`OVERFLOW_MSG`] panic into
/// `Err(`[`OVERFLOW_UNKNOWN`]`)` and re-raising every other panic (those
/// indicate bugs, not resource limits).  The shared building block behind
/// the "overflow degrades to a clean `Unknown`" guarantee of every public
/// solve entry point.
pub fn catch_overflow<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("panic");
            if msg.contains(OVERFLOW_MSG) {
                Err(OVERFLOW_UNKNOWN.to_string())
            } else {
                std::panic::panic_any(msg.to_string())
            }
        }
    }
}

/// Operations that had to take the big-integer slow lane (each one was a
/// spurious resource-out before the lane existed).
static OBS_SLOW_LANE: LazyLock<posr_obs::Counter> =
    LazyLock::new(|| posr_obs::counter("lia.rat.slow_lane"));

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) = 1`.
///
/// ```
/// use posr_lia::rational::Rat;
/// let a = Rat::new(1, 3);
/// let b = Rat::new(1, 6);
/// assert_eq!(a + b, Rat::new(1, 2));
/// assert!(a > b);
/// assert_eq!(Rat::from_int(2).floor(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn ugcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

pub(crate) fn gcd(a: i128, b: i128) -> i128 {
    ugcd(a.unsigned_abs(), b.unsigned_abs()) as i128
}

#[inline]
fn checked(v: Option<i128>) -> i128 {
    v.unwrap_or_else(|| overflow_panic())
}

fn big(v: i128) -> BigInt {
    BigInt::from_i128(v)
}

/// Slow-lane landing: reduces the exact `num / den` (`den` nonzero) and
/// converts back to machine words.  Panics with [`OVERFLOW_MSG`] only when
/// the reduced value needs more than an `i128` — the one case the solver
/// genuinely cannot represent.
#[cold]
fn reduce_fit(num: BigInt, den: BigInt) -> Rat {
    OBS_SLOW_LANE.incr();
    let (num, den) = if den.cmp_big(&BigInt::zero()) == Ordering::Less {
        (num.neg(), den.neg())
    } else {
        (num, den)
    };
    if num.is_zero() {
        return Rat::ZERO;
    }
    let g = num.gcd(&den);
    let (num, _) = num.divrem(&g);
    let (den, _) = den.divrem(&g);
    match (num.to_i128(), den.to_i128()) {
        (Some(num), Some(den)) => Rat { num, den },
        _ => overflow_panic(),
    }
}

impl Rat {
    /// The rational 0.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The rational 1.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates the rational `num / den` in lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        if num == 0 {
            return Rat::ZERO;
        }
        // reduce over unsigned magnitudes and reattach the sign at the
        // end, so `i128::MIN` inputs normalise instead of overflowing on
        // the up-front sign flip
        let neg = (num < 0) != (den < 0);
        let g = ugcd(num.unsigned_abs(), den.unsigned_abs());
        let n = num.unsigned_abs() / g;
        let d = den.unsigned_abs() / g;
        let max_n = if neg { 1u128 << 127 } else { i128::MAX as u128 };
        if n > max_n || d > i128::MAX as u128 {
            overflow_panic();
        }
        Rat {
            num: if neg {
                (n as i128).wrapping_neg()
            } else {
                n as i128
            },
            den: d as i128,
        }
    }

    /// Creates the rational `n / 1`.
    pub fn from_int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Numerator (after normalisation; carries the sign).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Largest integer `<= self`.
    pub fn floor(self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            -((-self.num + self.den - 1) / self.den)
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(self) -> i128 {
        if self.num >= 0 {
            (self.num + self.den - 1) / self.den
        } else {
            -((-self.num) / self.den)
        }
    }

    /// Converts to `i128` if the value is an integer.
    pub fn to_integer(self) -> Option<i128> {
        if self.is_integer() {
            Some(self.num)
        } else {
            None
        }
    }

    /// Absolute value.
    pub fn abs(self) -> Rat {
        Rat {
            num: checked(self.num.checked_abs()),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }
}

impl Default for Rat {
    fn default() -> Rat {
        Rat::ZERO
    }
}

impl From<i128> for Rat {
    fn from(n: i128) -> Rat {
        Rat::from_int(n)
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::from_int(n as i128)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        // fast paths for the shapes the simplex row updates produce: the
        // coefficients of automata-derived rows are integers almost
        // everywhere, and equal denominators appear whenever a row is
        // scaled once and then accumulated
        if self.den == rhs.den {
            let Some(num) = self.num.checked_add(rhs.num) else {
                // numerator sum needs 128 bits: finish exactly in the
                // slow lane (the shared den may still divide it back down)
                return reduce_fit(big(self.num).add(&big(rhs.num)), big(self.den));
            };
            if self.den == 1 {
                // integers stay integers: no gcd, no renormalisation
                return Rat { num, den: 1 };
            }
            // shared denominator: only the numerator sum can introduce a
            // common factor, and it divides the (already reduced) den
            let g = gcd(num, self.den);
            return Rat {
                num: num / g,
                den: self.den / g,
            };
        }
        let exact = (|| {
            let l = self.num.checked_mul(rhs.den)?;
            let r = rhs.num.checked_mul(self.den)?;
            Some((l.checked_add(r)?, self.den.checked_mul(rhs.den)?))
        })();
        match exact {
            Some((num, den)) => Rat::new(num, den),
            // a cross product overflowed: the exact sum often still
            // reduces into range (automata-derived dens share factors)
            None => reduce_fit(
                big(self.num)
                    .mul(&big(rhs.den))
                    .add(&big(rhs.num).mul(&big(self.den))),
                big(self.den).mul(&big(rhs.den)),
            ),
        }
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // ±1 are by far the most common row coefficients (every automaton
        // transition contributes a unit entry); neither needs arithmetic
        if rhs.den == 1 {
            match rhs.num {
                1 => return self,
                -1 => return -self,
                _ => {}
            }
        }
        if self.den == 1 {
            match self.num {
                1 => return rhs,
                -1 => return -rhs,
                _ => {}
            }
        }
        // cross-gcd reduction: divide each numerator by its gcd with the
        // *other* denominator before multiplying.  The products are then
        // already in lowest terms (both fractions are reduced), skipping
        // the final gcd — and intermediate magnitudes shrink, so products
        // whose reduced result fits in `i128` no longer overflow spuriously
        let ga = gcd(self.num, rhs.den);
        let gb = gcd(rhs.num, self.den);
        let (an, bd) = if ga > 1 {
            (self.num / ga, rhs.den / ga)
        } else {
            (self.num, rhs.den)
        };
        let (bn, ad) = if gb > 1 {
            (rhs.num / gb, self.den / gb)
        } else {
            (rhs.num, self.den)
        };
        // the cross-reduced factors are pairwise coprime, so the products
        // are already in lowest terms: an overflow here is a value that
        // genuinely needs more than an `i128` — no slow lane can save it
        Rat {
            num: checked(an.checked_mul(bn)),
            den: checked(ad.checked_mul(bd)),
        }
    }
}

impl Div for Rat {
    type Output = Rat;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via the reciprocal is exact here
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        // `-i128::MIN` does not exist; +2^127/den is unrepresentable
        Rat {
            num: checked(self.num.checked_neg()),
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // equal denominators (integers in particular) compare directly —
        // the common case in bound checks, where bounds are integral
        if self.den == other.den {
            return self.num.cmp(&other.num);
        }
        // differing signs need no arithmetic either (dens are positive)
        let (s, o) = (self.num.signum(), other.num.signum());
        if s != o {
            return s.cmp(&o);
        }
        match (
            self.num.checked_mul(other.den),
            other.num.checked_mul(self.den),
        ) {
            (Some(lhs), Some(rhs)) => lhs.cmp(&rhs),
            // deep coefficients: compare exactly — `cmp` is total and
            // never raises the overflow marker
            _ => {
                OBS_SLOW_LANE.incr();
                big(self.num)
                    .mul(&big(other.den))
                    .cmp_big(&big(other.num).mul(&big(self.den)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 7), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 6);
        assert_eq!(a + b, Rat::new(1, 2));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 18));
        assert_eq!(a / b, Rat::from_int(2));
        assert_eq!(-a, Rat::new(-1, 3));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) > Rat::new(1, 4));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::from_int(3) >= Rat::new(6, 2));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::from_int(5).floor(), 5);
        assert_eq!(Rat::from_int(5).ceil(), 5);
    }

    #[test]
    fn integer_detection() {
        assert!(Rat::new(4, 2).is_integer());
        assert!(!Rat::new(5, 2).is_integer());
        assert_eq!(Rat::new(4, 2).to_integer(), Some(2));
        assert_eq!(Rat::new(5, 2).to_integer(), None);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "posr-lia rational overflow")]
    fn overflow_panics_with_marker() {
        let big = Rat::from_int(i128::MAX / 2);
        let _ = big * big;
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 6).to_string(), "1/2");
        assert_eq!(Rat::from_int(-4).to_string(), "-4");
    }

    /// The reference implementations the fast paths must agree with:
    /// textbook cross-multiplication with the final gcd normalisation.
    fn slow_add(a: Rat, b: Rat) -> Rat {
        Rat::new(a.num * b.den + b.num * a.den, a.den * b.den)
    }

    fn slow_mul(a: Rat, b: Rat) -> Rat {
        Rat::new(a.num * b.num, a.den * b.den)
    }

    #[test]
    fn fast_paths_agree_with_reference() {
        // a small splat of values covering every fast-path shape: shared
        // denominators, integers, ±1 factors, zero, mixed signs
        let mut vals = Vec::new();
        for num in -6i128..=6 {
            for den in 1i128..=4 {
                vals.push(Rat::new(num, den));
            }
        }
        for &a in &vals {
            for &b in &vals {
                assert_eq!(a + b, slow_add(a, b), "add {a} {b}");
                assert_eq!(a - b, slow_add(a, -b), "sub {a} {b}");
                assert_eq!(a * b, slow_mul(a, b), "mul {a} {b}");
                let expected = (a.num * b.den).cmp(&(b.num * a.den));
                assert_eq!(a.cmp(&b), expected, "cmp {a} {b}");
                if !b.is_zero() {
                    assert_eq!(a / b, slow_mul(a, b.recip()), "div {a} {b}");
                }
            }
        }
    }

    #[test]
    fn integer_add_at_the_overflow_boundary() {
        // the integer fast path must be exact right up to the edge...
        let almost = Rat::from_int(i128::MAX - 1);
        assert_eq!(almost + Rat::ONE, Rat::from_int(i128::MAX));
        assert_eq!(
            Rat::from_int(i128::MIN + 1) - Rat::ONE,
            Rat::from_int(i128::MIN)
        );
    }

    #[test]
    #[should_panic(expected = "posr-lia rational overflow")]
    fn integer_add_past_the_boundary_panics() {
        // ...and panic with the recognised marker one past it, so the
        // solver converts it to a resource-out rather than a wrong answer
        let _ = Rat::from_int(i128::MAX) + Rat::ONE;
    }

    #[test]
    fn cross_reduction_survives_products_the_naive_multiply_cannot() {
        // (MAX-1)/2 * 2/(MAX-1) = 1: the naive num*num product overflows,
        // the cross-gcd reduction cancels before multiplying
        let big = i128::MAX - 1;
        let a = Rat::new(big, 2);
        let b = Rat::new(2, big);
        assert_eq!(a * b, Rat::ONE);
        // a genuinely too-large product must still panic with the marker
        let r = std::panic::catch_unwind(|| Rat::from_int(big) * Rat::from_int(big));
        let msg = *r.unwrap_err().downcast::<String>().expect("panic message");
        assert!(msg.contains(OVERFLOW_MSG), "got {msg}");
    }

    #[test]
    fn shared_denominator_add_renormalises() {
        // 1/6 + 1/6 = 1/3: the shared-den fast path must still reduce
        assert_eq!(Rat::new(1, 6) + Rat::new(1, 6), Rat::new(1, 3));
        assert_eq!(Rat::new(1, 4) + Rat::new(-1, 4), Rat::ZERO);
        assert_eq!(Rat::new(3, 4) + Rat::new(3, 4), Rat::new(3, 2));
    }

    #[test]
    fn slow_lane_rescues_shared_den_sums() {
        // the numerator sum needs 128 bits, but the shared denominator
        // divides it back into range: 2·(2^126+1)/4 = (2^126+1)/2
        let k = (1i128 << 126) + 1;
        let a = Rat::new(k, 4);
        assert_eq!(a + a, Rat::new(k, 2));
        // and the mirrored negative case
        let b = Rat::new(-k, 4);
        assert_eq!(b + b, Rat::new(-k, 2));
    }

    #[test]
    fn slow_lane_rescues_cross_multiplied_sums() {
        // dens 2^100 and 2^101 make every cross product overflow an i128,
        // yet the exact sum reduces to 3/2^101
        let a = Rat::new(1, 1i128 << 100);
        let b = Rat::new(1, 1i128 << 101);
        assert_eq!(a + b, Rat::new(3, 1i128 << 101));
        assert_eq!(b - a, Rat::new(-1, 1i128 << 101));
    }

    #[test]
    fn comparison_never_overflows() {
        // cross products here are ~2^216: the old checked multiply
        // panicked, the slow lane compares exactly
        let a = Rat::new((1i128 << 126) + 1, 1i128 << 90);
        let b = Rat::new((1i128 << 126) - 1, (1i128 << 90) - 1);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn new_normalises_i128_min() {
        // i128::MIN magnitudes reduce instead of overflowing on the sign
        // flip (gcd is a power of two here)
        assert_eq!(Rat::new(i128::MIN, 2), Rat::from_int(i128::MIN / 2));
        assert_eq!(Rat::new(i128::MIN, -2), Rat::from_int(-(i128::MIN / 2)));
        assert_eq!(
            Rat::new(1, 1) + Rat::new(i128::MIN, 1),
            Rat::from_int(i128::MIN + 1)
        );
    }

    #[test]
    fn comparison_without_multiplication_is_exact_at_the_boundary() {
        // sign and equal-den fast paths keep cmp total where the cross
        // multiplication would overflow
        let huge = Rat::from_int(i128::MAX);
        let tiny = Rat::from_int(i128::MIN);
        assert!(tiny < huge);
        assert!(huge > Rat::ZERO);
        assert!(Rat::from_int(i128::MAX - 1) < huge);
    }
}
