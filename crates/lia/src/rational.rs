//! Exact rational arithmetic over `i128`.
//!
//! The simplex feasibility checker works over the rationals.  The offline
//! dependency set available to this repository contains no big-integer crate,
//! so rationals are represented with `i128` numerator/denominator; every
//! arithmetic operation checks for overflow and panics with a recognisable
//! message on overflow.  The top-level solver catches this panic and reports
//! a *resource-out* instead of an incorrect answer (see
//! `posr_lia::solver::Solver::solve`).  On every workload shipped in this
//! repository the coefficients stay far below the overflow threshold.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Message used by arithmetic overflow panics; the solver recognises it when
/// converting panics to resource-limit results.
pub const OVERFLOW_MSG: &str = "posr-lia rational overflow";

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) = 1`.
///
/// ```
/// use posr_lia::rational::Rat;
/// let a = Rat::new(1, 3);
/// let b = Rat::new(1, 6);
/// assert_eq!(a + b, Rat::new(1, 2));
/// assert!(a > b);
/// assert_eq!(Rat::from_int(2).floor(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rat {
    num: i128,
    den: i128,
}

pub(crate) fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[inline]
fn checked(v: Option<i128>) -> i128 {
    v.unwrap_or_else(|| panic!("{OVERFLOW_MSG}"))
}

impl Rat {
    /// The rational 0.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The rational 1.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates the rational `num / den` in lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let num = checked(num.checked_mul(sign));
        let den = checked(den.checked_mul(sign));
        let g = gcd(num, den);
        if g == 0 {
            Rat { num: 0, den: 1 }
        } else {
            Rat {
                num: num / g,
                den: den / g,
            }
        }
    }

    /// Creates the rational `n / 1`.
    pub fn from_int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Numerator (after normalisation; carries the sign).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Largest integer `<= self`.
    pub fn floor(self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            -((-self.num + self.den - 1) / self.den)
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(self) -> i128 {
        if self.num >= 0 {
            (self.num + self.den - 1) / self.den
        } else {
            -((-self.num) / self.den)
        }
    }

    /// Converts to `i128` if the value is an integer.
    pub fn to_integer(self) -> Option<i128> {
        if self.is_integer() {
            Some(self.num)
        } else {
            None
        }
    }

    /// Absolute value.
    pub fn abs(self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }
}

impl Default for Rat {
    fn default() -> Rat {
        Rat::ZERO
    }
}

impl From<i128> for Rat {
    fn from(n: i128) -> Rat {
        Rat::from_int(n)
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::from_int(n as i128)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        let num = checked(
            checked(self.num.checked_mul(rhs.den))
                .checked_add(checked(rhs.num.checked_mul(self.den))),
        );
        let den = checked(self.den.checked_mul(rhs.den));
        Rat::new(num, den)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        let num = checked(self.num.checked_mul(rhs.num));
        let den = checked(self.den.checked_mul(rhs.den));
        Rat::new(num, den)
    }
}

impl Div for Rat {
    type Output = Rat;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via the reciprocal is exact here
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        let lhs = checked(self.num.checked_mul(other.den));
        let rhs = checked(other.num.checked_mul(self.den));
        lhs.cmp(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 7), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 6);
        assert_eq!(a + b, Rat::new(1, 2));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 18));
        assert_eq!(a / b, Rat::from_int(2));
        assert_eq!(-a, Rat::new(-1, 3));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) > Rat::new(1, 4));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::from_int(3) >= Rat::new(6, 2));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::from_int(5).floor(), 5);
        assert_eq!(Rat::from_int(5).ceil(), 5);
    }

    #[test]
    fn integer_detection() {
        assert!(Rat::new(4, 2).is_integer());
        assert!(!Rat::new(5, 2).is_integer());
        assert_eq!(Rat::new(4, 2).to_integer(), Some(2));
        assert_eq!(Rat::new(5, 2).to_integer(), None);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "posr-lia rational overflow")]
    fn overflow_panics_with_marker() {
        let big = Rat::from_int(i128::MAX / 2);
        let _ = big * big;
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 6).to_string(), "1/2");
        assert_eq!(Rat::from_int(-4).to_string(), "-4");
    }
}
