//! LIA formulas: Boolean combinations (and quantification) of linear
//! constraints.
//!
//! The reductions of the paper produce formulas of a restricted shape —
//! conjunctions and disjunctions of linear (in)equalities over Parikh
//! variables, plus one ∀∃ block for the `¬contains` encoding (Eq. 32) — but
//! the representation here is a full first-order LIA AST so that the same
//! machinery can express the Parikh formula (Appendix A), the consistency
//! side conditions (Sec. 5.3), and the user's own length constraints `I`.

use std::collections::BTreeSet;
use std::fmt;

use crate::term::{LinExpr, Var, VarPool};

/// Comparison operator of an atom `expr ⋈ 0`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cmp {
    /// `expr ≤ 0`
    Le,
    /// `expr < 0`
    Lt,
    /// `expr ≥ 0`
    Ge,
    /// `expr > 0`
    Gt,
    /// `expr = 0`
    Eq,
    /// `expr ≠ 0`
    Ne,
}

impl Cmp {
    /// The comparison satisfied exactly when `self` is not.
    pub fn negate(self) -> Cmp {
        match self {
            Cmp::Le => Cmp::Gt,
            Cmp::Lt => Cmp::Ge,
            Cmp::Ge => Cmp::Lt,
            Cmp::Gt => Cmp::Le,
            Cmp::Eq => Cmp::Ne,
            Cmp::Ne => Cmp::Eq,
        }
    }

    /// Evaluates `value ⋈ 0`.
    pub fn eval(self, value: i128) -> bool {
        match self {
            Cmp::Le => value <= 0,
            Cmp::Lt => value < 0,
            Cmp::Ge => value >= 0,
            Cmp::Gt => value > 0,
            Cmp::Eq => value == 0,
            Cmp::Ne => value != 0,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::Le => "≤",
            Cmp::Lt => "<",
            Cmp::Ge => "≥",
            Cmp::Gt => ">",
            Cmp::Eq => "=",
            Cmp::Ne => "≠",
        };
        write!(f, "{s}")
    }
}

/// An atomic constraint `expr ⋈ 0`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// Left-hand side; the right-hand side is always 0.
    pub expr: LinExpr,
    /// Comparison operator.
    pub cmp: Cmp,
}

impl Atom {
    /// Creates the atom `lhs ⋈ rhs` as `lhs - rhs ⋈ 0`.
    pub fn new(lhs: LinExpr, cmp: Cmp, rhs: LinExpr) -> Atom {
        Atom {
            expr: lhs - rhs,
            cmp,
        }
    }

    /// The negation of the atom.
    pub fn negate(&self) -> Atom {
        Atom {
            expr: self.expr.clone(),
            cmp: self.cmp.negate(),
        }
    }

    /// Evaluates the atom under a total assignment.
    pub fn eval(&self, assignment: &dyn Fn(Var) -> i128) -> bool {
        self.cmp.eval(self.expr.eval(assignment))
    }

    /// If the atom contains no variables, returns its truth value.
    pub fn constant_value(&self) -> Option<bool> {
        if self.expr.is_constant() {
            Some(self.cmp.eval(self.expr.constant_part()))
        } else {
            None
        }
    }
}

/// A LIA formula.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Formula {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// An atomic linear constraint.
    Atom(Atom),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// Universal quantification over integer variables.
    Forall(Vec<Var>, Box<Formula>),
    /// Existential quantification over integer variables.
    Exists(Vec<Var>, Box<Formula>),
}

impl Formula {
    /// Conjunction with simplification of trivial cases.
    pub fn and(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::True,
            1 => flat.pop().expect("len 1"),
            _ => Formula::And(flat),
        }
    }

    /// Disjunction with simplification of trivial cases.
    pub fn or(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::False,
            1 => flat.pop().expect("len 1"),
            _ => Formula::Or(flat),
        }
    }

    /// Negation with double-negation elimination.
    #[allow(clippy::should_implement_trait)] // smart constructor, not `ops::Not`
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            Formula::Atom(a) => Formula::Atom(a.negate()),
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Implication `a → b`.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::or(vec![Formula::not(a), b])
    }

    /// Bi-implication `a ↔ b`.
    pub fn iff(a: Formula, b: Formula) -> Formula {
        Formula::and(vec![
            Formula::implies(a.clone(), b.clone()),
            Formula::implies(b, a),
        ])
    }

    /// Atom `lhs = rhs`.
    pub fn eq(lhs: LinExpr, rhs: LinExpr) -> Formula {
        Formula::Atom(Atom::new(lhs, Cmp::Eq, rhs))
    }

    /// Atom `lhs ≠ rhs`.
    pub fn ne(lhs: LinExpr, rhs: LinExpr) -> Formula {
        Formula::Atom(Atom::new(lhs, Cmp::Ne, rhs))
    }

    /// Atom `lhs ≤ rhs`.
    pub fn le(lhs: LinExpr, rhs: LinExpr) -> Formula {
        Formula::Atom(Atom::new(lhs, Cmp::Le, rhs))
    }

    /// Atom `lhs < rhs`.
    pub fn lt(lhs: LinExpr, rhs: LinExpr) -> Formula {
        Formula::Atom(Atom::new(lhs, Cmp::Lt, rhs))
    }

    /// Atom `lhs ≥ rhs`.
    pub fn ge(lhs: LinExpr, rhs: LinExpr) -> Formula {
        Formula::Atom(Atom::new(lhs, Cmp::Ge, rhs))
    }

    /// Atom `lhs > rhs`.
    pub fn gt(lhs: LinExpr, rhs: LinExpr) -> Formula {
        Formula::Atom(Atom::new(lhs, Cmp::Gt, rhs))
    }

    /// Universal quantification (no-op for an empty variable list).
    pub fn forall(vars: Vec<Var>, body: Formula) -> Formula {
        if vars.is_empty() {
            body
        } else {
            Formula::Forall(vars, Box::new(body))
        }
    }

    /// Existential quantification (no-op for an empty variable list).
    pub fn exists(vars: Vec<Var>, body: Formula) -> Formula {
        if vars.is_empty() {
            body
        } else {
            Formula::Exists(vars, Box::new(body))
        }
    }

    /// Returns `true` if the formula contains no quantifier.
    pub fn is_quantifier_free(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => true,
            Formula::And(parts) | Formula::Or(parts) => {
                parts.iter().all(Formula::is_quantifier_free)
            }
            Formula::Not(inner) => inner.is_quantifier_free(),
            Formula::Forall(_, _) | Formula::Exists(_, _) => false,
        }
    }

    /// Number of AST nodes; used to report encoding sizes in the benchmarks.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 1,
            Formula::And(parts) | Formula::Or(parts) => {
                1 + parts.iter().map(Formula::size).sum::<usize>()
            }
            Formula::Not(inner) => 1 + inner.size(),
            Formula::Forall(_, body) | Formula::Exists(_, body) => 1 + body.size(),
        }
    }

    /// Number of atomic constraints.
    pub fn num_atoms(&self) -> usize {
        match self {
            Formula::True | Formula::False => 0,
            Formula::Atom(_) => 1,
            Formula::And(parts) | Formula::Or(parts) => parts.iter().map(Formula::num_atoms).sum(),
            Formula::Not(inner) => inner.num_atoms(),
            Formula::Forall(_, body) | Formula::Exists(_, body) => body.num_atoms(),
        }
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        fn go(f: &Formula, bound: &mut Vec<Var>, out: &mut BTreeSet<Var>) {
            match f {
                Formula::True | Formula::False => {}
                Formula::Atom(a) => {
                    for v in a.expr.variables() {
                        if !bound.contains(&v) {
                            out.insert(v);
                        }
                    }
                }
                Formula::And(parts) | Formula::Or(parts) => {
                    for p in parts {
                        go(p, bound, out);
                    }
                }
                Formula::Not(inner) => go(inner, bound, out),
                Formula::Forall(vars, body) | Formula::Exists(vars, body) => {
                    let n = bound.len();
                    bound.extend(vars.iter().copied());
                    go(body, bound, out);
                    bound.truncate(n);
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// Converts the formula to negation normal form (negations only on atoms).
    /// Quantifiers are handled by dualisation.
    pub fn nnf(&self) -> Formula {
        fn go(f: &Formula, negated: bool) -> Formula {
            match f {
                Formula::True => {
                    if negated {
                        Formula::False
                    } else {
                        Formula::True
                    }
                }
                Formula::False => {
                    if negated {
                        Formula::True
                    } else {
                        Formula::False
                    }
                }
                Formula::Atom(a) => {
                    if negated {
                        Formula::Atom(a.negate())
                    } else {
                        Formula::Atom(a.clone())
                    }
                }
                Formula::And(parts) => {
                    let mapped: Vec<Formula> = parts.iter().map(|p| go(p, negated)).collect();
                    if negated {
                        Formula::or(mapped)
                    } else {
                        Formula::and(mapped)
                    }
                }
                Formula::Or(parts) => {
                    let mapped: Vec<Formula> = parts.iter().map(|p| go(p, negated)).collect();
                    if negated {
                        Formula::and(mapped)
                    } else {
                        Formula::or(mapped)
                    }
                }
                Formula::Not(inner) => go(inner, !negated),
                Formula::Forall(vars, body) => {
                    let body = go(body, negated);
                    if negated {
                        Formula::exists(vars.clone(), body)
                    } else {
                        Formula::forall(vars.clone(), body)
                    }
                }
                Formula::Exists(vars, body) => {
                    let body = go(body, negated);
                    if negated {
                        Formula::forall(vars.clone(), body)
                    } else {
                        Formula::exists(vars.clone(), body)
                    }
                }
            }
        }
        go(self, false)
    }

    /// Substitutes a variable by a linear expression everywhere it occurs
    /// free.
    pub fn substitute(&self, var: Var, replacement: &LinExpr) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(a) => Formula::Atom(Atom {
                expr: a.expr.substitute(var, replacement),
                cmp: a.cmp,
            }),
            Formula::And(parts) => Formula::and(
                parts
                    .iter()
                    .map(|p| p.substitute(var, replacement))
                    .collect(),
            ),
            Formula::Or(parts) => Formula::or(
                parts
                    .iter()
                    .map(|p| p.substitute(var, replacement))
                    .collect(),
            ),
            Formula::Not(inner) => Formula::not(inner.substitute(var, replacement)),
            Formula::Forall(vars, body) => {
                if vars.contains(&var) {
                    Formula::Forall(vars.clone(), body.clone())
                } else {
                    Formula::forall(vars.clone(), body.substitute(var, replacement))
                }
            }
            Formula::Exists(vars, body) => {
                if vars.contains(&var) {
                    Formula::Exists(vars.clone(), body.clone())
                } else {
                    Formula::exists(vars.clone(), body.substitute(var, replacement))
                }
            }
        }
    }

    /// Evaluates a quantifier-free formula under a total assignment.
    ///
    /// # Panics
    /// Panics if the formula contains a quantifier.
    pub fn eval(&self, assignment: &dyn Fn(Var) -> i128) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(a) => a.eval(assignment),
            Formula::And(parts) => parts.iter().all(|p| p.eval(assignment)),
            Formula::Or(parts) => parts.iter().any(|p| p.eval(assignment)),
            Formula::Not(inner) => !inner.eval(assignment),
            Formula::Forall(_, _) | Formula::Exists(_, _) => {
                panic!("eval called on a quantified formula")
            }
        }
    }

    /// Constant folding: replaces variable-free atoms by their truth value and
    /// simplifies the Boolean structure.
    pub fn simplify(&self) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(a) => match a.constant_value() {
                Some(true) => Formula::True,
                Some(false) => Formula::False,
                None => Formula::Atom(a.clone()),
            },
            Formula::And(parts) => Formula::and(parts.iter().map(Formula::simplify).collect()),
            Formula::Or(parts) => Formula::or(parts.iter().map(Formula::simplify).collect()),
            Formula::Not(inner) => Formula::not(inner.simplify()),
            Formula::Forall(vars, body) => Formula::forall(vars.clone(), body.simplify()),
            Formula::Exists(vars, body) => Formula::exists(vars.clone(), body.simplify()),
        }
    }

    /// Renders the formula with variable names from a pool.
    pub fn display<'a>(&'a self, pool: &'a VarPool) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Formula, &'a VarPool);
        impl D<'_> {
            fn write(&self, f: &mut fmt::Formatter<'_>, formula: &Formula) -> fmt::Result {
                match formula {
                    Formula::True => write!(f, "⊤"),
                    Formula::False => write!(f, "⊥"),
                    Formula::Atom(a) => write!(f, "({} {} 0)", a.expr.display(self.1), a.cmp),
                    Formula::And(parts) => {
                        write!(f, "(and")?;
                        for p in parts {
                            write!(f, " ")?;
                            self.write(f, p)?;
                        }
                        write!(f, ")")
                    }
                    Formula::Or(parts) => {
                        write!(f, "(or")?;
                        for p in parts {
                            write!(f, " ")?;
                            self.write(f, p)?;
                        }
                        write!(f, ")")
                    }
                    Formula::Not(inner) => {
                        write!(f, "(not ")?;
                        self.write(f, inner)?;
                        write!(f, ")")
                    }
                    Formula::Forall(vars, body) => {
                        write!(f, "(forall (")?;
                        for (i, v) in vars.iter().enumerate() {
                            if i > 0 {
                                write!(f, " ")?;
                            }
                            write!(f, "{}", self.1.name(*v))?;
                        }
                        write!(f, ") ")?;
                        self.write(f, body)?;
                        write!(f, ")")
                    }
                    Formula::Exists(vars, body) => {
                        write!(f, "(exists (")?;
                        for (i, v) in vars.iter().enumerate() {
                            if i > 0 {
                                write!(f, " ")?;
                            }
                            write!(f, "{}", self.1.name(*v))?;
                        }
                        write!(f, ") ")?;
                        self.write(f, body)?;
                        write!(f, ")")
                    }
                }
            }
        }
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.write(f, self.0)
            }
        }
        D(self, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (VarPool, Var, Var) {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        (pool, x, y)
    }

    #[test]
    fn smart_constructors_simplify() {
        let (_, x, _) = setup();
        let atom = Formula::ge(LinExpr::var(x), LinExpr::constant(0));
        assert_eq!(Formula::and(vec![Formula::True, atom.clone()]), atom);
        assert_eq!(
            Formula::and(vec![Formula::False, atom.clone()]),
            Formula::False
        );
        assert_eq!(
            Formula::or(vec![Formula::True, atom.clone()]),
            Formula::True
        );
        assert_eq!(Formula::or(vec![]), Formula::False);
        assert_eq!(Formula::not(Formula::not(atom.clone())), atom);
    }

    #[test]
    fn negation_of_atom_flips_comparison() {
        let (_, x, _) = setup();
        let atom = Formula::le(LinExpr::var(x), LinExpr::constant(3));
        match Formula::not(atom) {
            Formula::Atom(a) => assert_eq!(a.cmp, Cmp::Gt),
            other => panic!("expected atom, got {other:?}"),
        }
    }

    #[test]
    fn evaluation_respects_boolean_structure() {
        let (_, x, y) = setup();
        // (x > 0 ∧ y = 2) ∨ x < -5
        let phi = Formula::or(vec![
            Formula::and(vec![
                Formula::gt(LinExpr::var(x), LinExpr::constant(0)),
                Formula::eq(LinExpr::var(y), LinExpr::constant(2)),
            ]),
            Formula::lt(LinExpr::var(x), LinExpr::constant(-5)),
        ]);
        assert!(phi.eval(&|v| if v == x { 1 } else { 2 }));
        assert!(!phi.eval(&|v| if v == x { 1 } else { 3 }));
        assert!(phi.eval(&|v| if v == x { -6 } else { 0 }));
    }

    #[test]
    fn nnf_pushes_negations_to_atoms() {
        let (_, x, y) = setup();
        let phi = Formula::Not(Box::new(Formula::And(vec![
            Formula::gt(LinExpr::var(x), LinExpr::constant(0)),
            Formula::Or(vec![
                Formula::eq(LinExpr::var(y), LinExpr::constant(1)),
                Formula::lt(LinExpr::var(x), LinExpr::var(y)),
            ]),
        ])));
        let nnf = phi.nnf();
        fn no_negation(f: &Formula) -> bool {
            match f {
                Formula::Not(_) => false,
                Formula::And(ps) | Formula::Or(ps) => ps.iter().all(no_negation),
                Formula::Forall(_, b) | Formula::Exists(_, b) => no_negation(b),
                _ => true,
            }
        }
        assert!(no_negation(&nnf));
        // semantics preserved on a few assignments
        for (vx, vy) in [(0, 0), (1, 1), (2, 5), (-3, -3)] {
            let assign = |v: Var| if v == x { vx } else { vy };
            assert_eq!(phi.eval(&assign), nnf.eval(&assign));
        }
    }

    #[test]
    fn nnf_dualises_quantifiers() {
        let (_, x, _) = setup();
        let phi = Formula::Not(Box::new(Formula::forall(
            vec![x],
            Formula::ge(LinExpr::var(x), LinExpr::constant(0)),
        )));
        match phi.nnf() {
            Formula::Exists(vars, body) => {
                assert_eq!(vars, vec![x]);
                match *body {
                    Formula::Atom(a) => assert_eq!(a.cmp, Cmp::Lt),
                    other => panic!("unexpected body {other:?}"),
                }
            }
            other => panic!("expected exists, got {other:?}"),
        }
    }

    #[test]
    fn substitution_respects_binding() {
        let (_, x, y) = setup();
        let phi = Formula::and(vec![
            Formula::eq(LinExpr::var(x), LinExpr::constant(1)),
            Formula::forall(vec![x], Formula::ge(LinExpr::var(x), LinExpr::var(y))),
        ]);
        let sub = phi.substitute(x, &LinExpr::constant(7));
        // the free occurrence is replaced, the bound one is not
        match sub {
            Formula::And(parts) => {
                match &parts[0] {
                    Formula::Atom(a) => assert!(a.expr.is_constant()),
                    other => panic!("unexpected {other:?}"),
                }
                match &parts[1] {
                    Formula::Forall(_, body) => {
                        assert!(body.free_vars().contains(&y));
                        let inner_vars: Vec<Var> = match body.as_ref() {
                            Formula::Atom(a) => a.expr.variables().collect(),
                            other => panic!("unexpected {other:?}"),
                        };
                        assert!(inner_vars.contains(&x));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn free_vars_excludes_bound() {
        let (_, x, y) = setup();
        let phi = Formula::exists(vec![x], Formula::eq(LinExpr::var(x), LinExpr::var(y)));
        let fv = phi.free_vars();
        assert!(fv.contains(&y));
        assert!(!fv.contains(&x));
    }

    #[test]
    fn simplify_folds_constants() {
        let (_, x, _) = setup();
        let phi = Formula::and(vec![
            Formula::eq(LinExpr::constant(1), LinExpr::constant(1)),
            Formula::ge(LinExpr::var(x), LinExpr::constant(0)),
            Formula::or(vec![Formula::lt(
                LinExpr::constant(5),
                LinExpr::constant(3),
            )]),
        ]);
        assert_eq!(phi.simplify(), Formula::False);
    }

    #[test]
    fn size_and_atom_counts() {
        let (_, x, y) = setup();
        let phi = Formula::or(vec![
            Formula::eq(LinExpr::var(x), LinExpr::constant(0)),
            Formula::and(vec![
                Formula::ge(LinExpr::var(y), LinExpr::constant(1)),
                Formula::le(LinExpr::var(y), LinExpr::constant(5)),
            ]),
        ]);
        assert_eq!(phi.num_atoms(), 3);
        assert!(phi.size() >= 5);
    }

    #[test]
    fn display_is_readable() {
        let (pool, x, y) = setup();
        let phi = Formula::and(vec![
            Formula::ge(LinExpr::var(x), LinExpr::constant(0)),
            Formula::eq(LinExpr::var(y), LinExpr::var(x)),
        ]);
        let s = format!("{}", phi.display(&pool));
        assert!(s.contains("and"));
        assert!(s.contains('x'));
        assert!(s.contains('y'));
    }
}
