//! Interval (bound) propagation over conjunctions of linear constraints.
//!
//! A [`BoundEnv`] keeps one rational interval per variable and tightens the
//! intervals by iterating over the asserted constraints: for `Σ cᵢxᵢ + k ≤ 0`
//! every variable can be bounded by the minimum of the remaining terms, and
//! equalities propagate in both directions.  Because every solver variable
//! ranges over the *integers*, inferred bounds are rounded inward
//! (`⌈lo⌉`/`⌊hi⌋`), which refutes gaps like `1 ≤ 3x ≤ 2` without invoking
//! the integer-feasibility backend.
//!
//! The engine is deliberately incomplete but very cheap — linear passes over
//! the constraints, no tableau — and it is *sound for refutation*: if
//! propagation derives an empty interval, the conjunction has no integer
//! solution.  The DPLL(T) search uses it as its unit-propagation oracle
//! (dropping refuted disjuncts, asserting forced ones), reserving the exact
//! simplex for the nodes propagation cannot decide.

use std::collections::BTreeMap;
use std::ops::Neg;

use crate::rational::Rat;
use crate::simplex::{Rel, SimplexConstraint};
use crate::term::{LinExpr, Var};

/// One interval per variable; absent entries mean `(-∞, +∞)`.
#[derive(Clone, Debug, Default)]
pub struct BoundEnv {
    lo: BTreeMap<Var, Rat>,
    hi: BTreeMap<Var, Rat>,
    /// Number of variables pinned to a point (`lo = hi`), maintained by
    /// the tighten operations: an O(1) change detector for the
    /// divisibility check's substitution (all recorded bounds are integer
    /// by construction, so this always equals `fixed().len()`).
    pinned: usize,
}

/// Result of asserting constraints into an environment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundOutcome {
    /// No contradiction found (the conjunction may still be infeasible).
    Open,
    /// The conjunction provably has no integer solution.
    Refuted,
}

/// Fixpoint rounds; propagation over the flow formulas converges in a few
/// passes, and capping keeps the worst case linear.
const MAX_ROUNDS: usize = 12;

/// How many times a single variable's tightening may re-fire its dependent
/// constraints within one [`BoundEnv::propagate`] call.  Genuine cascades
/// tighten each variable once or twice; anything past the cap is a
/// divergent loop inching towards the magnitude guard.
const TIGHTEN_CAP: u32 = 8;

/// Bounds beyond this magnitude are not recorded: divergent cascades
/// (`x ≥ y + 1 ∧ y ≥ x` tightens forever) would otherwise grow values
/// geometrically under the worklist propagation until the checked `i128`
/// arithmetic overflows.  Dropping a tightening is always sound — the
/// interval stays valid, just looser — and real bounds of the encodings
/// are far below this.
pub(crate) const MAGNITUDE_LIMIT: i128 = 1 << 24;

impl BoundEnv {
    /// An unconstrained environment.
    pub fn new() -> BoundEnv {
        BoundEnv::default()
    }

    /// Builds an environment from a conjunction, propagating to fixpoint.
    pub fn from_constraints(constraints: &[SimplexConstraint]) -> (BoundEnv, BoundOutcome) {
        let mut env = BoundEnv::new();
        let outcome = env.assert_all(constraints);
        (env, outcome)
    }

    /// Asserts constraints and propagates to fixpoint (or the round cap).
    pub fn assert_all(&mut self, constraints: &[SimplexConstraint]) -> BoundOutcome {
        for _ in 0..MAX_ROUNDS {
            let mut changed_vars = Vec::new();
            for c in constraints {
                if self.assert_one(c, &mut changed_vars).is_err() {
                    return BoundOutcome::Refuted;
                }
            }
            if changed_vars.is_empty() {
                break;
            }
        }
        BoundOutcome::Open
    }

    /// Asserts `extra` and then re-propagates only those `context`
    /// constraints whose variables actually tightened, walking the
    /// dependency `index` worklist-style.  `budget` caps the number of
    /// constraint visits (a cut-off loses completeness, never soundness).
    pub fn propagate(
        &mut self,
        extra: &[SimplexConstraint],
        context: &[SimplexConstraint],
        index: &ConstraintIndex,
        budget: usize,
    ) -> BoundOutcome {
        let mut scratch = Vec::new();
        self.propagate_into(extra, context, index, budget, &mut scratch)
    }

    /// [`BoundEnv::propagate`] that also appends every variable whose
    /// interval tightened to `changed_out` (possibly with duplicates) —
    /// the CDCL(T) engine's theory propagation scans exactly those
    /// variables' atoms for newly entailed literals.
    pub fn propagate_into(
        &mut self,
        extra: &[SimplexConstraint],
        context: &[SimplexConstraint],
        index: &ConstraintIndex,
        budget: usize,
        changed_out: &mut Vec<Var>,
    ) -> BoundOutcome {
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut queued = vec![false; context.len()];
        // slow-divergence guard: a variable whose bound keeps tightening
        // (`x ≥ y + 1 ∧ y ≥ x` walks off by one per visit, far below the
        // magnitude guard) stops re-firing its dependents after a few
        // rounds.  The recorded bounds stay valid — the cascade just stops
        // chasing an unbounded fixpoint and leaves the interval looser,
        // which burns O(cap) instead of the whole visit budget.
        let mut tighten_counts: BTreeMap<Var, u32> = BTreeMap::new();
        let mut enqueue_dependents = |vars: &[Var],
                                      queue: &mut std::collections::VecDeque<usize>,
                                      queued: &mut Vec<bool>| {
            for v in vars {
                let fired = tighten_counts.entry(*v).or_insert(0);
                *fired += 1;
                if *fired > TIGHTEN_CAP {
                    continue;
                }
                for &i in index.dependents(*v) {
                    if !queued[i] {
                        queued[i] = true;
                        queue.push_back(i);
                    }
                }
            }
        };
        let mut visits = 0usize;
        // outer loop: the extra constraints must re-fire after the context
        // tightened their variables, or the probe misses cascades the plain
        // round-based fixpoint would find
        for _ in 0..MAX_ROUNDS {
            let mut changed_vars: Vec<Var> = Vec::new();
            for _ in 0..MAX_ROUNDS {
                let before = changed_vars.len();
                for c in extra {
                    if self.assert_one(c, &mut changed_vars).is_err() {
                        return BoundOutcome::Refuted;
                    }
                }
                if changed_vars.len() == before {
                    break;
                }
            }
            if changed_vars.is_empty() && visits > 0 {
                break;
            }
            changed_out.extend_from_slice(&changed_vars);
            enqueue_dependents(&changed_vars, &mut queue, &mut queued);
            if queue.is_empty() {
                break;
            }
            while let Some(i) = queue.pop_front() {
                queued[i] = false;
                visits += 1;
                if visits > budget {
                    return BoundOutcome::Open;
                }
                changed_vars.clear();
                if self.assert_one(&context[i], &mut changed_vars).is_err() {
                    return BoundOutcome::Refuted;
                }
                changed_out.extend_from_slice(&changed_vars);
                enqueue_dependents(&changed_vars, &mut queue, &mut queued);
            }
        }
        BoundOutcome::Open
    }

    /// Asserts one constraint; tightened variables are appended to `changed`.
    fn assert_one(
        &mut self,
        constraint: &SimplexConstraint,
        changed: &mut Vec<Var>,
    ) -> Result<(), ()> {
        match constraint.rel {
            Rel::Le => self.assert_le(&constraint.expr, changed)?,
            Rel::Ge => {
                let negated = negate(&constraint.expr);
                self.assert_le(&negated, changed)?;
            }
            Rel::Eq => {
                self.assert_le(&constraint.expr, changed)?;
                let negated = negate(&constraint.expr);
                self.assert_le(&negated, changed)?;
            }
        }
        Ok(())
    }

    /// Propagates `expr ≤ 0`.
    fn assert_le(&mut self, expr: &LinExpr, changed: &mut Vec<Var>) -> Result<(), ()> {
        // refutation: the smallest possible value must not be positive
        if let Some(min) = self.expr_min(expr) {
            if min.is_positive() {
                return Err(());
            }
        }
        // tightening: c·v ≤ −(min of the rest)
        for (v, c) in expr.terms() {
            let Some(rest_min) = self.expr_min_excluding(expr, v) else {
                continue;
            };
            let bound = -rest_min / Rat::from_int(c);
            if c > 0 {
                // v ≤ bound; integer variables round down
                if self.tighten_hi(v, Rat::from_int(bound.floor()))? {
                    changed.push(v);
                }
            } else {
                // v ≥ bound; integer variables round up
                if self.tighten_lo(v, Rat::from_int(bound.ceil()))? {
                    changed.push(v);
                }
            }
        }
        Ok(())
    }

    fn tighten_lo(&mut self, v: Var, value: Rat) -> Result<bool, ()> {
        if value > Rat::from_int(MAGNITUDE_LIMIT) || value < Rat::from_int(-MAGNITUDE_LIMIT) {
            return Ok(false);
        }
        let tightened = match self.lo.get(&v) {
            Some(&current) if current >= value => false,
            _ => {
                self.lo.insert(v, value);
                // a variable already pinned before this strict tightening
                // would now have lo > hi, caught as Err below — so this
                // transition-to-pinned count cannot double-count
                if self.hi.get(&v) == Some(&value) {
                    self.pinned += 1;
                }
                true
            }
        };
        if let (Some(&lo), Some(&hi)) = (self.lo.get(&v), self.hi.get(&v)) {
            if lo > hi {
                return Err(());
            }
        }
        Ok(tightened)
    }

    fn tighten_hi(&mut self, v: Var, value: Rat) -> Result<bool, ()> {
        if value > Rat::from_int(MAGNITUDE_LIMIT) || value < Rat::from_int(-MAGNITUDE_LIMIT) {
            return Ok(false);
        }
        let tightened = match self.hi.get(&v) {
            Some(&current) if current <= value => false,
            _ => {
                self.hi.insert(v, value);
                if self.lo.get(&v) == Some(&value) {
                    self.pinned += 1;
                }
                true
            }
        };
        if let (Some(&lo), Some(&hi)) = (self.lo.get(&v), self.hi.get(&v)) {
            if lo > hi {
                return Err(());
            }
        }
        Ok(tightened)
    }

    /// The interval of `expr` under the current bounds: `(min, max)`, with
    /// `None` for an unbounded side.
    pub fn expr_range(&self, expr: &LinExpr) -> (Option<Rat>, Option<Rat>) {
        let min = self.expr_min(expr);
        let max = self.expr_min(&negate(expr)).map(Neg::neg);
        (min, max)
    }

    /// Lower bound of `expr` under the current intervals (`None` = −∞).
    fn expr_min(&self, expr: &LinExpr) -> Option<Rat> {
        let mut total = Rat::from_int(expr.constant_part());
        for (v, c) in expr.terms() {
            total += self.term_min(v, c)?;
        }
        Some(total)
    }

    /// Lower bound of `expr − c·v` (`None` = −∞).
    fn expr_min_excluding(&self, expr: &LinExpr, excluded: Var) -> Option<Rat> {
        let mut total = Rat::from_int(expr.constant_part());
        for (v, c) in expr.terms() {
            if v != excluded {
                total += self.term_min(v, c)?;
            }
        }
        Some(total)
    }

    /// The current interval of a single variable (`None` = unbounded side).
    pub fn var_range(&self, v: Var) -> (Option<Rat>, Option<Rat>) {
        (self.lo.get(&v).copied(), self.hi.get(&v).copied())
    }

    /// The number of point-pinned variables — O(1), maintained by the
    /// tighten operations; equals `self.fixed().len()`.
    pub fn pinned_count(&self) -> usize {
        self.pinned
    }

    /// Variables pinned to a single integer value (`lo = hi ∈ ℤ`), used by
    /// the divisibility refutation to substitute constants before the GCD
    /// test.
    pub fn fixed(&self) -> BTreeMap<Var, i128> {
        let mut out = BTreeMap::new();
        for (&v, &lo) in &self.lo {
            if self.hi.get(&v) == Some(&lo) {
                if let Some(value) = lo.to_integer() {
                    out.insert(v, value);
                }
            }
        }
        out
    }

    fn term_min(&self, v: Var, c: i128) -> Option<Rat> {
        let bound = if c > 0 {
            self.lo.get(&v)
        } else {
            self.hi.get(&v)
        };
        bound.map(|&b| b * Rat::from_int(c))
    }
}

/// Maps every variable to the indices of the constraints mentioning it, so
/// probes can re-propagate only what a tightened bound can actually affect.
///
/// Besides the one-shot [`ConstraintIndex::build`], the index supports
/// stack-shaped incremental maintenance ([`ConstraintIndex::push`] /
/// [`ConstraintIndex::pop`]): the CDCL(T) engine keeps it in lock-step with
/// its theory-literal trail instead of rebuilding it at every fixpoint.
#[derive(Clone, Debug, Default)]
pub struct ConstraintIndex {
    by_var: BTreeMap<Var, Vec<usize>>,
    len: usize,
    empty: Vec<usize>,
}

impl ConstraintIndex {
    /// Indexes a constraint slice (positions are into that slice).
    pub fn build(constraints: &[SimplexConstraint]) -> ConstraintIndex {
        let mut index = ConstraintIndex::default();
        for c in constraints {
            index.push(c);
        }
        index
    }

    /// Number of indexed constraints.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no constraint is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends the next constraint (position `self.len()`).
    pub fn push(&mut self, constraint: &SimplexConstraint) {
        let i = self.len;
        for v in constraint.expr.variables() {
            self.by_var.entry(v).or_default().push(i);
        }
        self.len += 1;
    }

    /// Removes the most recently pushed constraint; the caller passes it
    /// back so its variables can be unindexed without a scan.
    pub fn pop(&mut self, constraint: &SimplexConstraint) {
        debug_assert!(self.len > 0);
        self.len -= 1;
        for v in constraint.expr.variables() {
            let entries = self.by_var.get_mut(&v).expect("pushed variable");
            debug_assert_eq!(entries.last(), Some(&self.len));
            entries.pop();
        }
    }

    /// Constraints mentioning `v`.
    pub fn dependents(&self, v: Var) -> &[usize] {
        self.by_var
            .get(&v)
            .map(Vec::as_slice)
            .unwrap_or(&self.empty)
    }
}

fn negate(expr: &LinExpr) -> LinExpr {
    let mut out = LinExpr::constant(-expr.constant_part());
    for (v, c) in expr.terms() {
        out.add_term(v, -c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarPool;

    fn le(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Le }
    }

    fn ge(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Ge }
    }

    fn eq(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Eq }
    }

    #[test]
    fn propagates_simple_chain() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // x ≥ 3, y − x ≥ 0, y ≤ 2 — contradiction via transitivity
        let constraints = vec![
            ge(LinExpr::var(x) - LinExpr::constant(3)),
            ge(LinExpr::var(y) - LinExpr::var(x)),
            le(LinExpr::var(y) - LinExpr::constant(2)),
        ];
        let (_, outcome) = BoundEnv::from_constraints(&constraints);
        assert_eq!(outcome, BoundOutcome::Refuted);
    }

    #[test]
    fn integer_rounding_refutes_gaps() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        // 1 ≤ 3x ≤ 2: rationally feasible, integrally empty
        let constraints = vec![
            ge(LinExpr::scaled_var(x, 3) - LinExpr::constant(1)),
            le(LinExpr::scaled_var(x, 3) - LinExpr::constant(2)),
        ];
        let (_, outcome) = BoundEnv::from_constraints(&constraints);
        assert_eq!(outcome, BoundOutcome::Refuted);
    }

    #[test]
    fn zero_sum_of_nonnegatives_pins_everything() {
        let mut pool = VarPool::new();
        let xs: Vec<Var> = (0..4).map(|i| pool.fresh(&format!("x{i}"))).collect();
        let mut constraints: Vec<SimplexConstraint> =
            xs.iter().map(|&v| ge(LinExpr::var(v))).collect();
        constraints.push(eq(LinExpr::sum_of_vars(xs.iter().copied())));
        // then x0 ≥ 1 contradicts the zero sum
        constraints.push(ge(LinExpr::var(xs[0]) - LinExpr::constant(1)));
        let (_, outcome) = BoundEnv::from_constraints(&constraints);
        assert_eq!(outcome, BoundOutcome::Refuted);
    }

    #[test]
    fn feasible_systems_stay_open() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let constraints = vec![
            ge(LinExpr::var(x)),
            ge(LinExpr::var(y)),
            eq(LinExpr::var(x) + LinExpr::var(y) - LinExpr::constant(5)),
        ];
        let (env, outcome) = BoundEnv::from_constraints(&constraints);
        assert_eq!(outcome, BoundOutcome::Open);
        // and the intervals are genuinely tightened: x ∈ [0, 5]
        assert_eq!(env.lo.get(&x), Some(&Rat::from_int(0)));
        assert_eq!(env.hi.get(&x), Some(&Rat::from_int(5)));
    }
}
