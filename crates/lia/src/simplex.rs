//! Rational feasibility of conjunctions of linear constraints via the
//! *general simplex* algorithm (Dutertre & de Moura style).
//!
//! The solver answers the question "does the conjunction `Σ aᵢxᵢ ⋈ c` (with
//! `⋈ ∈ {≤, ≥, =}`) have a solution over the rationals?" and produces a
//! rational witness when it does.  Integer feasibility is layered on top of
//! this in [`crate::intfeas`] by branch-and-bound, and the Boolean structure
//! of full LIA formulas is handled by [`crate::solver`].
//!
//! Strict inequalities and disequalities never reach this layer: the integer
//! setting lets the upper layers rewrite `<`/`>` into `≤`/`≥` with a shifted
//! constant, and `≠` is split disjunctively.

use std::collections::BTreeMap;

use crate::rational::Rat;
use crate::term::{LinExpr, Var};

/// Relation of a simplex constraint `expr ⋈ bound`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rel {
    /// `expr ≤ bound`
    Le,
    /// `expr ≥ bound`
    Ge,
    /// `expr = bound`
    Eq,
}

/// A constraint handed to the simplex: `expr ⋈ 0` with `⋈ ∈ {≤, ≥, =}`.
/// The constant part of `expr` is honoured (it is moved to the bound side).
#[derive(Clone, Debug)]
pub struct SimplexConstraint {
    /// Linear expression (its constant part becomes part of the bound).
    pub expr: LinExpr,
    /// Relation against zero.
    pub rel: Rel,
}

/// Result of a feasibility check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimplexResult {
    /// The constraints are satisfiable over ℚ; a witness assignment for every
    /// variable occurring in the constraints is returned.
    Feasible(BTreeMap<Var, Rat>),
    /// The constraints are unsatisfiable over ℚ (hence also over ℤ).
    Infeasible,
}

impl SimplexResult {
    /// Returns `true` if feasible.
    pub fn is_feasible(&self) -> bool {
        matches!(self, SimplexResult::Feasible(_))
    }
}

/// Checks rational feasibility of a conjunction of constraints.
///
/// This is a convenience wrapper that builds a [`Simplex`] tableau, asserts
/// all constraints and runs the check loop.
pub fn check_feasibility(constraints: &[SimplexConstraint]) -> SimplexResult {
    let mut simplex = Simplex::new(constraints);
    simplex.check()
}

/// [`check_feasibility`] with a Farkas-style core on infeasibility: the
/// `Err` value indexes an irreducible infeasible subset of `constraints`.
pub fn check_feasibility_with_core(
    constraints: &[SimplexConstraint],
) -> Result<BTreeMap<Var, Rat>, Vec<usize>> {
    let mut simplex = Simplex::new(constraints);
    simplex.check_with_core()
}

/// The general-simplex tableau.
pub struct Simplex {
    /// Number of problem variables (columns `0..num_vars` correspond to the
    /// original [`Var`]s in `var_order`).
    num_vars: usize,
    /// Original variables in column order.
    var_order: Vec<Var>,
    /// `rows[b]` is `Some(coeffs)` iff variable `b` is basic, with
    /// `x_b = Σ coeffs[n]·x_n` over the nonbasic variables `n`.
    rows: Vec<Option<BTreeMap<usize, Rat>>>,
    /// Lower bounds per variable.
    lower: Vec<Option<Rat>>,
    /// Upper bounds per variable.
    upper: Vec<Option<Rat>>,
    /// Current assignment per variable.
    beta: Vec<Rat>,
}

impl Simplex {
    /// Builds a tableau for the given constraints: one slack variable per
    /// constraint, bounds on the slack variables.
    pub fn new(constraints: &[SimplexConstraint]) -> Simplex {
        // collect problem variables
        let mut var_index: BTreeMap<Var, usize> = BTreeMap::new();
        let mut var_order: Vec<Var> = Vec::new();
        for c in constraints {
            for v in c.expr.variables() {
                var_index.entry(v).or_insert_with(|| {
                    var_order.push(v);
                    var_order.len() - 1
                });
            }
        }
        let num_vars = var_order.len();
        let total = num_vars + constraints.len();
        let mut rows: Vec<Option<BTreeMap<usize, Rat>>> = vec![None; total];
        let mut lower: Vec<Option<Rat>> = vec![None; total];
        let mut upper: Vec<Option<Rat>> = vec![None; total];
        let beta: Vec<Rat> = vec![Rat::ZERO; total];

        for (j, c) in constraints.iter().enumerate() {
            let slack = num_vars + j;
            let mut coeffs: BTreeMap<usize, Rat> = BTreeMap::new();
            for (v, coeff) in c.expr.terms() {
                let col = var_index[&v];
                let entry = coeffs.entry(col).or_insert(Rat::ZERO);
                *entry += Rat::from_int(coeff);
            }
            coeffs.retain(|_, r| !r.is_zero());
            rows[slack] = Some(coeffs);
            // expr + const ⋈ 0  ⟺  slack ⋈ -const
            let bound = Rat::from_int(-c.expr.constant_part());
            match c.rel {
                Rel::Le => upper[slack] = Some(bound),
                Rel::Ge => lower[slack] = Some(bound),
                Rel::Eq => {
                    lower[slack] = Some(bound);
                    upper[slack] = Some(bound);
                }
            }
        }

        Simplex {
            num_vars,
            var_order,
            rows,
            lower,
            upper,
            beta,
        }
    }

    fn is_basic(&self, v: usize) -> bool {
        self.rows[v].is_some()
    }

    /// Recomputes the value of every basic variable from the nonbasic values.
    fn recompute_basics(&mut self) {
        for v in 0..self.beta.len() {
            if let Some(row) = &self.rows[v] {
                let mut value = Rat::ZERO;
                for (&col, &coeff) in row {
                    value += coeff * self.beta[col];
                }
                self.beta[v] = value;
            }
        }
    }

    fn violates_lower(&self, v: usize) -> bool {
        matches!(self.lower[v], Some(l) if self.beta[v] < l)
    }

    fn violates_upper(&self, v: usize) -> bool {
        matches!(self.upper[v], Some(u) if self.beta[v] > u)
    }

    /// Pivot basic variable `b` with nonbasic variable `n` and set `b` to `v`.
    fn pivot_and_update(&mut self, b: usize, n: usize, v: Rat) {
        let row_b = self.rows[b].clone().expect("b must be basic");
        let a_bn = *row_b.get(&n).expect("n must occur in the row of b");
        let theta = (v - self.beta[b]) / a_bn;
        self.beta[b] = v;
        self.beta[n] += theta;
        for other in 0..self.beta.len() {
            if other != b {
                if let Some(row) = &self.rows[other] {
                    if let Some(&a_on) = row.get(&n) {
                        self.beta[other] += a_on * theta;
                    }
                }
            }
        }
        self.pivot(b, n, &row_b, a_bn);
    }

    /// Structural pivot: `b` leaves the basis, `n` enters it.
    fn pivot(&mut self, b: usize, n: usize, row_b: &BTreeMap<usize, Rat>, a_bn: Rat) {
        // n = (b - Σ_{k≠n} a_bk·k) / a_bn
        let mut new_row_n: BTreeMap<usize, Rat> = BTreeMap::new();
        new_row_n.insert(b, Rat::ONE / a_bn);
        for (&k, &a_bk) in row_b {
            if k != n {
                new_row_n.insert(k, -a_bk / a_bn);
            }
        }
        new_row_n.retain(|_, r| !r.is_zero());
        self.rows[b] = None;
        // substitute n in every other row
        for other in 0..self.rows.len() {
            if other == n {
                continue;
            }
            let Some(row) = self.rows[other].clone() else {
                continue;
            };
            if let Some(&a_on) = row.get(&n) {
                let mut new_row = row.clone();
                new_row.remove(&n);
                for (&k, &c) in &new_row_n {
                    let entry = new_row.entry(k).or_insert(Rat::ZERO);
                    *entry += a_on * c;
                }
                new_row.retain(|_, r| !r.is_zero());
                self.rows[other] = Some(new_row);
            }
        }
        self.rows[n] = Some(new_row_n);
    }

    /// Runs the check loop (Bland's rule for termination).
    pub fn check(&mut self) -> SimplexResult {
        match self.check_with_core() {
            Ok(model) => SimplexResult::Feasible(model),
            Err(_) => SimplexResult::Infeasible,
        }
    }

    /// Like [`Simplex::check`], but an infeasible outcome carries the
    /// indices (into the constructor's constraint slice) of an
    /// *irreducible infeasible subset*: when a basic variable `b` violates
    /// a bound and no nonbasic in its row can move, `b = Σ aₙ·n` with every
    /// nonbasic pinned at the blocking bound is a Farkas certificate — the
    /// constraints bounding `b` and those nonbasics are jointly
    /// infeasible.  Slack variables map 1:1 to input constraints, and
    /// problem variables are unbounded here (bounds arrive as explicit
    /// constraints), so the certificate mentions only slacks.  This is
    /// what gives the CDCL(T) engine small learned clauses from rational
    /// conflicts without any deletion-minimisation loop.
    pub fn check_with_core(&mut self) -> Result<BTreeMap<Var, Rat>, Vec<usize>> {
        self.recompute_basics();
        loop {
            // smallest basic variable violating one of its bounds
            let violating = (0..self.beta.len())
                .find(|&v| self.is_basic(v) && (self.violates_lower(v) || self.violates_upper(v)));
            let Some(b) = violating else {
                return Ok(self.model());
            };
            let row = self.rows[b].clone().expect("basic");
            if self.violates_lower(b) {
                let target = self.lower[b].expect("violated lower bound exists");
                // find nonbasic n with (a_bn > 0 and beta[n] can increase) or (a_bn < 0 and beta[n] can decrease)
                let candidate = row.iter().find(|(&n, &a)| {
                    debug_assert!(!self.is_basic(n));
                    (a.is_positive() && self.upper[n].is_none_or(|u| self.beta[n] < u))
                        || (a.is_negative() && self.lower[n].is_none_or(|l| self.beta[n] > l))
                });
                match candidate {
                    None => return Err(self.conflict_core(b, &row)),
                    Some((&n, _)) => self.pivot_and_update(b, n, target),
                }
            } else {
                let target = self.upper[b].expect("violated upper bound exists");
                let candidate = row.iter().find(|(&n, &a)| {
                    (a.is_negative() && self.upper[n].is_none_or(|u| self.beta[n] < u))
                        || (a.is_positive() && self.lower[n].is_none_or(|l| self.beta[n] > l))
                });
                match candidate {
                    None => return Err(self.conflict_core(b, &row)),
                    Some((&n, _)) => self.pivot_and_update(b, n, target),
                }
            }
        }
    }

    /// The constraint indices of the Farkas certificate at a stuck row.
    fn conflict_core(&self, b: usize, row: &BTreeMap<usize, Rat>) -> Vec<usize> {
        let mut core = Vec::with_capacity(row.len() + 1);
        if b >= self.num_vars {
            core.push(b - self.num_vars);
        }
        for &n in row.keys() {
            if n >= self.num_vars {
                core.push(n - self.num_vars);
            }
        }
        core.sort_unstable();
        core.dedup();
        core
    }

    /// Extracts the current rational assignment of the problem variables.
    fn model(&self) -> BTreeMap<Var, Rat> {
        let mut out = BTreeMap::new();
        for (col, &var) in self.var_order.iter().enumerate() {
            out.insert(var, self.beta[col]);
        }
        out
    }

    /// Number of problem (non-slack) variables.
    pub fn num_problem_vars(&self) -> usize {
        self.num_vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarPool;

    fn le(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Le }
    }
    fn ge(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Ge }
    }
    fn eq(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Eq }
    }

    fn check_model(constraints: &[SimplexConstraint], model: &BTreeMap<Var, Rat>) {
        for c in constraints {
            let mut value = Rat::from_int(c.expr.constant_part());
            for (v, coeff) in c.expr.terms() {
                value += Rat::from_int(coeff) * model.get(&v).copied().unwrap_or(Rat::ZERO);
            }
            let ok = match c.rel {
                Rel::Le => value <= Rat::ZERO,
                Rel::Ge => value >= Rat::ZERO,
                Rel::Eq => value == Rat::ZERO,
            };
            assert!(ok, "model violates constraint {:?} (value {value})", c.rel);
        }
    }

    #[test]
    fn simple_feasible_system() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // x + y = 5, x >= 2, y >= 2
        let constraints = vec![
            eq(LinExpr::var(x) + LinExpr::var(y) - LinExpr::constant(5)),
            ge(LinExpr::var(x) - LinExpr::constant(2)),
            ge(LinExpr::var(y) - LinExpr::constant(2)),
        ];
        match check_feasibility(&constraints) {
            SimplexResult::Feasible(m) => check_model(&constraints, &m),
            SimplexResult::Infeasible => panic!("should be feasible"),
        }
    }

    #[test]
    fn simple_infeasible_system() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        // x >= 3 and x <= 2
        let constraints = vec![
            ge(LinExpr::var(x) - LinExpr::constant(3)),
            le(LinExpr::var(x) - LinExpr::constant(2)),
        ];
        assert_eq!(check_feasibility(&constraints), SimplexResult::Infeasible);
    }

    #[test]
    fn infeasible_needs_combination() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // x + y >= 10, x <= 3, y <= 3
        let constraints = vec![
            ge(LinExpr::var(x) + LinExpr::var(y) - LinExpr::constant(10)),
            le(LinExpr::var(x) - LinExpr::constant(3)),
            le(LinExpr::var(y) - LinExpr::constant(3)),
        ];
        assert_eq!(check_feasibility(&constraints), SimplexResult::Infeasible);
    }

    #[test]
    fn rational_solution_found() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        // 2x = 1
        let constraints = vec![eq(LinExpr::scaled_var(x, 2) - LinExpr::constant(1))];
        match check_feasibility(&constraints) {
            SimplexResult::Feasible(m) => {
                assert_eq!(m[&x], Rat::new(1, 2));
            }
            SimplexResult::Infeasible => panic!("should be feasible"),
        }
    }

    #[test]
    fn equalities_propagate() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let z = pool.fresh("z");
        // x = y, y = z, x + y + z = 9 -> all 3
        let constraints = vec![
            eq(LinExpr::var(x) - LinExpr::var(y)),
            eq(LinExpr::var(y) - LinExpr::var(z)),
            eq(LinExpr::var(x) + LinExpr::var(y) + LinExpr::var(z) - LinExpr::constant(9)),
        ];
        match check_feasibility(&constraints) {
            SimplexResult::Feasible(m) => {
                check_model(&constraints, &m);
                assert_eq!(m[&x], Rat::from_int(3));
            }
            SimplexResult::Infeasible => panic!("should be feasible"),
        }
    }

    #[test]
    fn constant_contradiction() {
        // 0 >= 1 expressed as an expression with no variables
        let constraints = vec![ge(LinExpr::constant(-1))];
        assert_eq!(check_feasibility(&constraints), SimplexResult::Infeasible);
        let constraints = vec![ge(LinExpr::constant(1))];
        assert!(check_feasibility(&constraints).is_feasible());
    }

    #[test]
    fn larger_chain_is_feasible() {
        let mut pool = VarPool::new();
        let vars: Vec<Var> = (0..20).map(|i| pool.fresh(&format!("x{i}"))).collect();
        // x0 >= 1, x_{i+1} >= x_i + 1, x_19 <= 100
        let mut constraints = vec![ge(LinExpr::var(vars[0]) - LinExpr::constant(1))];
        for w in vars.windows(2) {
            constraints.push(ge(LinExpr::var(w[1])
                - LinExpr::var(w[0])
                - LinExpr::constant(1)));
        }
        constraints.push(le(LinExpr::var(vars[19]) - LinExpr::constant(100)));
        match check_feasibility(&constraints) {
            SimplexResult::Feasible(m) => check_model(&constraints, &m),
            SimplexResult::Infeasible => panic!("should be feasible"),
        }
        // tightening the last bound to 10 makes it infeasible
        constraints.pop();
        constraints.push(le(LinExpr::var(vars[19]) - LinExpr::constant(10)));
        assert_eq!(check_feasibility(&constraints), SimplexResult::Infeasible);
    }
}
