//! Rational feasibility of conjunctions of linear constraints via the
//! *general simplex* algorithm of Dutertre & de Moura — in its full
//! **incremental, backtrackable** form.
//!
//! The central type is [`IncrementalSimplex`]: a tableau that lives for a
//! whole search (or a whole incremental solving session) instead of being
//! rebuilt per feasibility check.
//!
//! * **Atoms are registered once.**  Every constraint `Σ aᵢxᵢ + k ⋈ 0` is
//!   canonicalised to a *form* (coefficients divided by their gcd, leading
//!   sign positive, constant dropped).  A form with a single unit term is
//!   owned by the problem column itself; every other form gets one slack
//!   variable with the definitional row `s = Σ aᵢxᵢ`, created the first
//!   time the form is seen ([`IncrementalSimplex::prepare`]).  Atoms that
//!   differ only in their constant — the overwhelmingly common case in the
//!   CDCL(T) engine, where both polarities of a Boolean atom and all the
//!   branch bounds of branch-and-bound share a form — share one tableau
//!   variable.
//! * **Assertions are O(1) trail operations.**  Asserting a constraint
//!   ([`IncrementalSimplex::assert_prepared`]) tightens the owner
//!   variable's lower/upper bound, records the old bound on an undo trail,
//!   and (for a nonbasic owner) nudges the assignment inside the new
//!   bound.  No row is touched.  An immediately contradictory pair of
//!   bounds is reported with its two-element core without any pivoting.
//! * **Only `check` pivots, warm-starting from the previous basis.**  The
//!   `β` assignment and the basis survive assertions, retractions and
//!   earlier checks, so a re-check after one new bound typically pivots
//!   once or not at all — this is what makes the theory side of CDCL(T)
//!   as incremental as the Boolean side.
//! * **Backtracking** is stack-shaped: [`IncrementalSimplex::retract_to`]
//!   unwinds the bound trail to a given assertion count (the CDCL engine
//!   keeps assertions aligned with its theory-literal trail), and
//!   [`IncrementalSimplex::push_level`] / [`IncrementalSimplex::pop_level`]
//!   provide the same thing keyed by search depth (branch-and-bound).
//!   Retraction only ever *relaxes* bounds, so the current assignment
//!   stays consistent and nothing is recomputed.
//!
//! Infeasibility is reported with a **Farkas core**: the tags of an
//! irreducible jointly-infeasible set of asserted bounds (a stuck row's
//! violated bound plus the blocking bounds of its nonbasics).  Tags are
//! caller-chosen `u32`s — the CDCL engine passes theory-trail indices, so
//! cores translate directly into learned clauses.
//!
//! The one-shot [`check_feasibility`] / [`check_feasibility_with_core`]
//! entry points survive as thin wrappers (register + assert + check on a
//! fresh tableau); [`SessionSimplex`] adapts the incremental tableau to
//! callers that present whole constraint *slices* that evolve
//! prefix-wise, like the structural DPLL(T) walk.
//!
//! Strict inequalities and disequalities never reach this layer: the
//! integer setting lets the upper layers rewrite `<`/`>` into `≤`/`≥`
//! with a shifted constant, and `≠` is split disjunctively.

use std::collections::{BTreeMap, HashMap};

use crate::rational::{gcd, Rat};
use crate::term::{LinExpr, Var};

/// Pivots performed across every tableau in the process (obs counter; the
/// per-engine number lives in `SolverStats::simplex_pivots`).
static OBS_PIVOTS: std::sync::LazyLock<posr_obs::Counter> =
    std::sync::LazyLock::new(|| posr_obs::counter("simplex.pivots"));

/// Relation of a simplex constraint `expr ⋈ bound`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rel {
    /// `expr ≤ bound`
    Le,
    /// `expr ≥ bound`
    Ge,
    /// `expr = bound`
    Eq,
}

/// A constraint handed to the simplex: `expr ⋈ 0` with `⋈ ∈ {≤, ≥, =}`.
/// The constant part of `expr` is honoured (it is moved to the bound side).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimplexConstraint {
    /// Linear expression (its constant part becomes part of the bound).
    pub expr: LinExpr,
    /// Relation against zero.
    pub rel: Rel,
}

/// Result of a feasibility check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimplexResult {
    /// The constraints are satisfiable over ℚ; a witness assignment for every
    /// variable occurring in the constraints is returned.
    Feasible(BTreeMap<Var, Rat>),
    /// The constraints are unsatisfiable over ℚ (hence also over ℤ).
    Infeasible,
}

impl SimplexResult {
    /// Returns `true` if feasible.
    pub fn is_feasible(&self) -> bool {
        matches!(self, SimplexResult::Feasible(_))
    }
}

/// Checks rational feasibility of a conjunction of constraints.
///
/// One-shot convenience over [`IncrementalSimplex`]: register and assert
/// every constraint on a fresh tableau, then run the check loop.
pub fn check_feasibility(constraints: &[SimplexConstraint]) -> SimplexResult {
    match check_feasibility_with_core(constraints) {
        Ok(model) => SimplexResult::Feasible(model),
        Err(_) => SimplexResult::Infeasible,
    }
}

/// [`check_feasibility`] with a Farkas-style core on infeasibility: the
/// `Err` value indexes an irreducible infeasible subset of `constraints`.
pub fn check_feasibility_with_core(
    constraints: &[SimplexConstraint],
) -> Result<BTreeMap<Var, Rat>, Vec<usize>> {
    let mut simplex = IncrementalSimplex::new();
    for (i, c) in constraints.iter().enumerate() {
        if let Err(core) = simplex.assert_constraint(c, i as u32) {
            return Err(core_to_indices(core));
        }
    }
    match simplex.check() {
        Ok(()) => Ok(simplex.model()),
        Err(core) => Err(core_to_indices(core)),
    }
}

fn core_to_indices(core: Vec<u32>) -> Vec<usize> {
    let mut out: Vec<usize> = core.into_iter().map(|t| t as usize).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// The tableau variable that owns a canonicalised constraint form.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Owner {
    /// The form had no variables; `true` iff the (constant) constraint
    /// evaluated to a satisfied comparison at preparation time is decided
    /// per bound at assert time instead — this variant only records that
    /// there is nothing to assert on.
    Constant,
    /// Internal tableau variable (problem column or slack).
    Tableau(usize),
}

/// A constraint pre-compiled against a tableau: the owning variable plus
/// the bound(s) it asserts, ready for O(1) assertion.  Produced by
/// [`IncrementalSimplex::prepare`]; the CDCL engine caches one per theory
/// literal at registration time.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PreparedBound {
    owner: Owner,
    /// `owner ≥ lo` to assert (already sign/scale-normalised).
    lo: Option<Rat>,
    /// `owner ≤ hi` to assert.
    hi: Option<Rat>,
    /// For `Owner::Constant`: whether the constraint holds.
    const_sat: bool,
}

/// One undone bound change: which side of which variable, and the value
/// (with its tag) it had before.
struct UndoEntry {
    var: usize,
    upper: bool,
    old: Option<(Rat, u32)>,
}

/// The persistent, backtrackable general-simplex tableau (see the module
/// docs for the architecture).
pub struct IncrementalSimplex {
    /// Problem variable → internal tableau index.
    var_cols: HashMap<Var, usize>,
    /// Internal index → problem variable (`None` for slacks).
    col_vars: Vec<Option<Var>>,
    /// Canonical form → slack internal index.
    forms: HashMap<LinExpr, usize>,
    /// `rows[b]` is `Some(coeffs)` iff variable `b` is basic, with
    /// `x_b = Σ coeffs[n]·x_n` over the nonbasic variables `n`.
    rows: Vec<Option<BTreeMap<usize, Rat>>>,
    /// Lower bounds per variable, tagged with the asserting constraint.
    lower: Vec<Option<(Rat, u32)>>,
    /// Upper bounds per variable, tagged with the asserting constraint.
    upper: Vec<Option<(Rat, u32)>>,
    /// Current assignment per variable (kept consistent at all times:
    /// every basic value equals its row evaluated at the nonbasics).
    beta: Vec<Rat>,
    /// Undo trail of bound changes.
    undo: Vec<UndoEntry>,
    /// Per successful assertion: the undo-trail length before it.
    assert_marks: Vec<usize>,
    /// Per open level: the assertion count when it was pushed.
    level_marks: Vec<usize>,
    /// Cumulative pivot count (never reset; the engine reads deltas).
    pivots: u64,
}

impl Default for IncrementalSimplex {
    fn default() -> IncrementalSimplex {
        IncrementalSimplex::new()
    }
}

impl IncrementalSimplex {
    /// An empty tableau.
    pub fn new() -> IncrementalSimplex {
        IncrementalSimplex {
            var_cols: HashMap::new(),
            col_vars: Vec::new(),
            forms: HashMap::new(),
            rows: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            beta: Vec::new(),
            undo: Vec::new(),
            assert_marks: Vec::new(),
            level_marks: Vec::new(),
            pivots: 0,
        }
    }

    /// Number of currently asserted constraints.
    pub fn num_asserted(&self) -> usize {
        self.assert_marks.len()
    }

    /// Cumulative structural pivots performed by [`IncrementalSimplex::check`].
    pub fn pivots(&self) -> u64 {
        self.pivots
    }

    /// Number of tableau variables (problem columns plus slacks).
    pub fn num_tableau_vars(&self) -> usize {
        self.beta.len()
    }

    fn add_var(&mut self, problem: Option<Var>) -> usize {
        let idx = self.beta.len();
        self.col_vars.push(problem);
        self.rows.push(None);
        self.lower.push(None);
        self.upper.push(None);
        self.beta.push(Rat::ZERO);
        idx
    }

    fn col_of(&mut self, v: Var) -> usize {
        if let Some(&c) = self.var_cols.get(&v) {
            return c;
        }
        let c = self.add_var(Some(v));
        self.var_cols.insert(v, c);
        c
    }

    /// The slack variable of a canonical form, creating it (and its
    /// definitional row, expressed over the *current* nonbasics) on first
    /// sight.  New slacks can be registered at any point of a session —
    /// basic variables in the form are substituted by their rows, and the
    /// slack's assignment is computed from the current one, so the tableau
    /// invariants hold immediately.
    fn slack_of(&mut self, form: &LinExpr) -> usize {
        if let Some(&s) = self.forms.get(form) {
            return s;
        }
        let mut row: BTreeMap<usize, Rat> = BTreeMap::new();
        for (v, c) in form.terms() {
            let col = self.col_of(v);
            let coeff = Rat::from_int(c);
            if let Some(def) = self.rows[col].clone() {
                for (j, a) in def {
                    let entry = row.entry(j).or_insert(Rat::ZERO);
                    *entry += coeff * a;
                }
            } else {
                let entry = row.entry(col).or_insert(Rat::ZERO);
                *entry += coeff;
            }
        }
        row.retain(|_, r| !r.is_zero());
        let mut value = Rat::ZERO;
        for (&j, &a) in &row {
            value += a * self.beta[j];
        }
        let s = self.add_var(None);
        self.rows[s] = Some(row);
        self.beta[s] = value;
        self.forms.insert(form.clone(), s);
        s
    }

    /// Pre-compiles a constraint: canonicalises its form, registers the
    /// owning tableau variable (idempotent), and normalises the bound so
    /// assertion is a constant-time trail operation.
    pub fn prepare(&mut self, constraint: &SimplexConstraint) -> PreparedBound {
        let k = constraint.expr.constant_part();
        if constraint.expr.is_constant() {
            let const_sat = match constraint.rel {
                Rel::Le => k <= 0,
                Rel::Ge => k >= 0,
                Rel::Eq => k == 0,
            };
            return PreparedBound {
                owner: Owner::Constant,
                lo: None,
                hi: None,
                const_sat,
            };
        }
        // canonical form: coefficients divided by their gcd, first
        // coefficient positive, constant dropped
        let mut g: i128 = 0;
        let mut first_sign: i128 = 0;
        for (_, c) in constraint.expr.terms() {
            g = gcd(g, c);
            if first_sign == 0 {
                first_sign = if c > 0 { 1 } else { -1 };
            }
        }
        let scale = g * first_sign; // expr = scale · form + k
        let mut form = LinExpr::zero();
        for (v, c) in constraint.expr.terms() {
            form.add_term(v, c / scale);
        }
        // expr ⋈ 0  ⟺  form ⋈ −k/scale (relation flips when scale < 0)
        let bound = Rat::from_int(-k) / Rat::from_int(scale);
        let rel = match (constraint.rel, scale > 0) {
            (rel, true) => rel,
            (Rel::Le, false) => Rel::Ge,
            (Rel::Ge, false) => Rel::Le,
            (Rel::Eq, false) => Rel::Eq,
        };
        let owner = if form.num_terms() == 1 {
            // canonical single-term forms have coefficient 1: the problem
            // column itself owns the bound, no slack row is needed
            let v = form.variables().next().expect("single term");
            Owner::Tableau(self.col_of(v))
        } else {
            Owner::Tableau(self.slack_of(&form))
        };
        let (lo, hi) = match rel {
            Rel::Le => (None, Some(bound)),
            Rel::Ge => (Some(bound), None),
            Rel::Eq => (Some(bound), Some(bound)),
        };
        PreparedBound {
            owner,
            lo,
            hi,
            const_sat: true,
        }
    }

    /// Asserts a pre-compiled constraint under `tag`.  O(1): tightens the
    /// owner's interval (recording the old bound for backtracking) and, for
    /// a nonbasic owner, moves its value inside the new bound.  On an
    /// immediate contradiction (`lo > hi`) the state is left unchanged and
    /// the two clashing tags are returned.
    pub fn assert_prepared(&mut self, prepared: &PreparedBound, tag: u32) -> Result<(), Vec<u32>> {
        let mark = self.undo.len();
        let x = match prepared.owner {
            Owner::Constant => {
                if prepared.const_sat {
                    self.assert_marks.push(mark);
                    return Ok(());
                }
                return Err(vec![tag]);
            }
            Owner::Tableau(x) => x,
        };
        if let Some(lo) = prepared.lo {
            if let Some((hi, hi_tag)) = self.upper[x] {
                if lo > hi {
                    return Err(vec![hi_tag, tag]);
                }
            }
            if self.lower[x].is_none_or(|(cur, _)| lo > cur) {
                self.undo.push(UndoEntry {
                    var: x,
                    upper: false,
                    old: self.lower[x],
                });
                self.lower[x] = Some((lo, tag));
                if self.rows[x].is_none() && self.beta[x] < lo {
                    self.update(x, lo);
                }
            }
        }
        if let Some(hi) = prepared.hi {
            if let Some((lo, lo_tag)) = self.lower[x] {
                if hi < lo {
                    // roll back a lower bound this same assertion recorded
                    self.unwind_to(mark);
                    return Err(vec![lo_tag, tag]);
                }
            }
            if self.upper[x].is_none_or(|(cur, _)| hi < cur) {
                self.undo.push(UndoEntry {
                    var: x,
                    upper: true,
                    old: self.upper[x],
                });
                self.upper[x] = Some((hi, tag));
                if self.rows[x].is_none() && self.beta[x] > hi {
                    self.update(x, hi);
                }
            }
        }
        self.assert_marks.push(mark);
        Ok(())
    }

    /// [`IncrementalSimplex::prepare`] + [`IncrementalSimplex::assert_prepared`]
    /// for callers without a preparation cache.
    pub fn assert_constraint(
        &mut self,
        constraint: &SimplexConstraint,
        tag: u32,
    ) -> Result<(), Vec<u32>> {
        let prepared = self.prepare(constraint);
        self.assert_prepared(&prepared, tag)
    }

    /// Retracts assertions (most recent first) until at most `n` remain,
    /// restoring the bounds they tightened.  Bounds only relax, so the
    /// current assignment — and the basis — stay valid.
    pub fn retract_to(&mut self, n: usize) {
        while self.assert_marks.len() > n {
            let mark = self.assert_marks.pop().expect("non-empty");
            self.unwind_to(mark);
        }
        // levels opened above the surviving assertions are gone too
        while self
            .level_marks
            .last()
            .is_some_and(|&m| m > self.assert_marks.len())
        {
            self.level_marks.pop();
        }
    }

    fn unwind_to(&mut self, mark: usize) {
        while self.undo.len() > mark {
            let entry = self.undo.pop().expect("non-empty");
            if entry.upper {
                self.upper[entry.var] = entry.old;
            } else {
                self.lower[entry.var] = entry.old;
            }
        }
    }

    /// Opens a backtracking level (branch-and-bound style).
    pub fn push_level(&mut self) {
        self.level_marks.push(self.assert_marks.len());
    }

    /// Closes the innermost level, retracting its assertions.
    pub fn pop_level(&mut self) {
        if let Some(n) = self.level_marks.pop() {
            self.retract_to(n);
        }
    }

    /// Pops levels until at most `depth` remain open.
    pub fn pop_to_level(&mut self, depth: usize) {
        while self.level_marks.len() > depth {
            self.pop_level();
        }
    }

    /// Number of open levels.
    pub fn num_levels(&self) -> usize {
        self.level_marks.len()
    }

    fn is_basic(&self, v: usize) -> bool {
        self.rows[v].is_some()
    }

    fn violates_lower(&self, v: usize) -> bool {
        matches!(self.lower[v], Some((l, _)) if self.beta[v] < l)
    }

    fn violates_upper(&self, v: usize) -> bool {
        matches!(self.upper[v], Some((u, _)) if self.beta[v] > u)
    }

    /// Sets nonbasic `n` to `v`, propagating the delta into the basics.
    fn update(&mut self, n: usize, v: Rat) {
        let delta = v - self.beta[n];
        self.beta[n] = v;
        for other in 0..self.beta.len() {
            if let Some(row) = &self.rows[other] {
                if let Some(&a_on) = row.get(&n) {
                    self.beta[other] += a_on * delta;
                }
            }
        }
    }

    /// Pivot basic variable `b` with nonbasic variable `n` and set `b` to `v`.
    fn pivot_and_update(&mut self, b: usize, n: usize, v: Rat) {
        let row_b = self.rows[b].clone().expect("b must be basic");
        let a_bn = *row_b.get(&n).expect("n must occur in the row of b");
        let theta = (v - self.beta[b]) / a_bn;
        self.beta[b] = v;
        self.beta[n] += theta;
        for other in 0..self.beta.len() {
            if other != b {
                if let Some(row) = &self.rows[other] {
                    if let Some(&a_on) = row.get(&n) {
                        self.beta[other] += a_on * theta;
                    }
                }
            }
        }
        self.pivot(b, n, &row_b, a_bn);
        self.pivots += 1;
    }

    /// Structural pivot: `b` leaves the basis, `n` enters it.
    fn pivot(&mut self, b: usize, n: usize, row_b: &BTreeMap<usize, Rat>, a_bn: Rat) {
        // n = (b - Σ_{k≠n} a_bk·k) / a_bn
        let mut new_row_n: BTreeMap<usize, Rat> = BTreeMap::new();
        new_row_n.insert(b, Rat::ONE / a_bn);
        for (&k, &a_bk) in row_b {
            if k != n {
                new_row_n.insert(k, -a_bk / a_bn);
            }
        }
        new_row_n.retain(|_, r| !r.is_zero());
        self.rows[b] = None;
        // substitute n in every other row
        for other in 0..self.rows.len() {
            if other == n {
                continue;
            }
            let Some(row) = self.rows[other].clone() else {
                continue;
            };
            if let Some(&a_on) = row.get(&n) {
                let mut new_row = row.clone();
                new_row.remove(&n);
                for (&k, &c) in &new_row_n {
                    let entry = new_row.entry(k).or_insert(Rat::ZERO);
                    *entry += a_on * c;
                }
                new_row.retain(|_, r| !r.is_zero());
                self.rows[other] = Some(new_row);
            }
        }
        self.rows[n] = Some(new_row_n);
    }

    /// Runs the check loop (Bland's rule for termination), warm-starting
    /// from the current basis and assignment.  `Err` carries the tags of a
    /// Farkas certificate — an irreducible jointly-infeasible subset of the
    /// asserted bounds (the stuck row's violated bound plus the blocking
    /// bounds of its nonbasics).
    pub fn check(&mut self) -> Result<(), Vec<u32>> {
        let _span = posr_obs::span("simplex", "simplex.pivot-session");
        let pivots_before = self.pivots;
        let result = self.check_loop();
        OBS_PIVOTS.add(self.pivots - pivots_before);
        result
    }

    fn check_loop(&mut self) -> Result<(), Vec<u32>> {
        loop {
            // smallest basic variable violating one of its bounds
            let violating = (0..self.beta.len())
                .find(|&v| self.is_basic(v) && (self.violates_lower(v) || self.violates_upper(v)));
            let Some(b) = violating else {
                return Ok(());
            };
            let row = self.rows[b].clone().expect("basic");
            let lower_violation = self.violates_lower(b);
            if lower_violation {
                let target = self.lower[b].expect("violated lower bound exists").0;
                // find nonbasic n with (a_bn > 0 and beta[n] can increase)
                // or (a_bn < 0 and beta[n] can decrease)
                let candidate = row.iter().find(|(&n, &a)| {
                    debug_assert!(!self.is_basic(n));
                    (a.is_positive() && self.upper[n].is_none_or(|(u, _)| self.beta[n] < u))
                        || (a.is_negative() && self.lower[n].is_none_or(|(l, _)| self.beta[n] > l))
                });
                match candidate {
                    None => return Err(self.conflict_core(b, &row, true)),
                    Some((&n, _)) => self.pivot_and_update(b, n, target),
                }
            } else {
                let target = self.upper[b].expect("violated upper bound exists").0;
                let candidate = row.iter().find(|(&n, &a)| {
                    (a.is_negative() && self.upper[n].is_none_or(|(u, _)| self.beta[n] < u))
                        || (a.is_positive() && self.lower[n].is_none_or(|(l, _)| self.beta[n] > l))
                });
                match candidate {
                    None => return Err(self.conflict_core(b, &row, false)),
                    Some((&n, _)) => self.pivot_and_update(b, n, target),
                }
            }
        }
    }

    /// The bound tags of the Farkas certificate at a stuck row: when basic
    /// `b` violates a bound and no nonbasic in its row can move, every
    /// nonbasic is pinned at its blocking bound — those bounds plus the
    /// violated one are jointly infeasible, and the set is irreducible by
    /// construction.
    fn conflict_core(
        &self,
        b: usize,
        row: &BTreeMap<usize, Rat>,
        lower_violation: bool,
    ) -> Vec<u32> {
        let mut core = Vec::with_capacity(row.len() + 1);
        let own = if lower_violation {
            self.lower[b].expect("violated bound").1
        } else {
            self.upper[b].expect("violated bound").1
        };
        core.push(own);
        for (&n, &a) in row {
            // lower violation needs β(b) to rise: a > 0 nonbasics are
            // blocked at their upper bound, a < 0 at their lower (and
            // dually for an upper violation)
            let blocking_upper = lower_violation == a.is_positive();
            let tag = if blocking_upper {
                self.upper[n].expect("blocking bound").1
            } else {
                self.lower[n].expect("blocking bound").1
            };
            core.push(tag);
        }
        core.sort_unstable();
        core.dedup();
        core
    }

    /// The current rational assignment of the registered problem variables.
    pub fn model(&self) -> BTreeMap<Var, Rat> {
        let mut out = BTreeMap::new();
        for (&var, &col) in &self.var_cols {
            out.insert(var, self.beta[col]);
        }
        out
    }
}

/// Adapts the incremental tableau to callers that re-check whole
/// constraint *slices* that evolve prefix-wise (clone-and-extend DFS, like
/// the structural DPLL(T) walk): each call retracts to the longest common
/// prefix with the previous one and asserts only the new suffix.
#[derive(Default)]
pub struct SessionSimplex {
    simplex: IncrementalSimplex,
    asserted: Vec<SimplexConstraint>,
}

impl SessionSimplex {
    /// An empty session.
    pub fn new() -> SessionSimplex {
        SessionSimplex::default()
    }

    /// Cumulative pivots of the underlying tableau.
    pub fn pivots(&self) -> u64 {
        self.simplex.pivots()
    }

    /// `true` iff the conjunction is rationally infeasible, reusing the
    /// tableau state shared with the previous call's constraint prefix.
    pub fn infeasible(&mut self, constraints: &[SimplexConstraint]) -> bool {
        let common = self
            .asserted
            .iter()
            .zip(constraints)
            .take_while(|(a, b)| a == b)
            .count();
        self.simplex.retract_to(common);
        self.asserted.truncate(common);
        for c in &constraints[common..] {
            if self
                .simplex
                .assert_constraint(c, self.asserted.len() as u32)
                .is_err()
            {
                return true;
            }
            self.asserted.push(c.clone());
        }
        self.simplex.check().is_err()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarPool;

    fn le(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Le }
    }
    fn ge(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Ge }
    }
    fn eq(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Eq }
    }

    fn check_model(constraints: &[SimplexConstraint], model: &BTreeMap<Var, Rat>) {
        for c in constraints {
            let mut value = Rat::from_int(c.expr.constant_part());
            for (v, coeff) in c.expr.terms() {
                value += Rat::from_int(coeff) * model.get(&v).copied().unwrap_or(Rat::ZERO);
            }
            let ok = match c.rel {
                Rel::Le => value <= Rat::ZERO,
                Rel::Ge => value >= Rat::ZERO,
                Rel::Eq => value == Rat::ZERO,
            };
            assert!(ok, "model violates constraint {:?} (value {value})", c.rel);
        }
    }

    #[test]
    fn simple_feasible_system() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // x + y = 5, x >= 2, y >= 2
        let constraints = vec![
            eq(LinExpr::var(x) + LinExpr::var(y) - LinExpr::constant(5)),
            ge(LinExpr::var(x) - LinExpr::constant(2)),
            ge(LinExpr::var(y) - LinExpr::constant(2)),
        ];
        match check_feasibility(&constraints) {
            SimplexResult::Feasible(m) => check_model(&constraints, &m),
            SimplexResult::Infeasible => panic!("should be feasible"),
        }
    }

    #[test]
    fn simple_infeasible_system() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        // x >= 3 and x <= 2
        let constraints = vec![
            ge(LinExpr::var(x) - LinExpr::constant(3)),
            le(LinExpr::var(x) - LinExpr::constant(2)),
        ];
        assert_eq!(check_feasibility(&constraints), SimplexResult::Infeasible);
    }

    #[test]
    fn infeasible_needs_combination() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // x + y >= 10, x <= 3, y <= 3
        let constraints = vec![
            ge(LinExpr::var(x) + LinExpr::var(y) - LinExpr::constant(10)),
            le(LinExpr::var(x) - LinExpr::constant(3)),
            le(LinExpr::var(y) - LinExpr::constant(3)),
        ];
        assert_eq!(check_feasibility(&constraints), SimplexResult::Infeasible);
    }

    #[test]
    fn rational_solution_found() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        // 2x = 1
        let constraints = vec![eq(LinExpr::scaled_var(x, 2) - LinExpr::constant(1))];
        match check_feasibility(&constraints) {
            SimplexResult::Feasible(m) => {
                assert_eq!(m[&x], Rat::new(1, 2));
            }
            SimplexResult::Infeasible => panic!("should be feasible"),
        }
    }

    #[test]
    fn equalities_propagate() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let z = pool.fresh("z");
        // x = y, y = z, x + y + z = 9 -> all 3
        let constraints = vec![
            eq(LinExpr::var(x) - LinExpr::var(y)),
            eq(LinExpr::var(y) - LinExpr::var(z)),
            eq(LinExpr::var(x) + LinExpr::var(y) + LinExpr::var(z) - LinExpr::constant(9)),
        ];
        match check_feasibility(&constraints) {
            SimplexResult::Feasible(m) => {
                check_model(&constraints, &m);
                assert_eq!(m[&x], Rat::from_int(3));
            }
            SimplexResult::Infeasible => panic!("should be feasible"),
        }
    }

    #[test]
    fn constant_contradiction() {
        // 0 >= 1 expressed as an expression with no variables
        let constraints = vec![ge(LinExpr::constant(-1))];
        assert_eq!(check_feasibility(&constraints), SimplexResult::Infeasible);
        let constraints = vec![ge(LinExpr::constant(1))];
        assert!(check_feasibility(&constraints).is_feasible());
    }

    #[test]
    fn larger_chain_is_feasible() {
        let mut pool = VarPool::new();
        let vars: Vec<Var> = (0..20).map(|i| pool.fresh(&format!("x{i}"))).collect();
        // x0 >= 1, x_{i+1} >= x_i + 1, x_19 <= 100
        let mut constraints = vec![ge(LinExpr::var(vars[0]) - LinExpr::constant(1))];
        for w in vars.windows(2) {
            constraints.push(ge(LinExpr::var(w[1])
                - LinExpr::var(w[0])
                - LinExpr::constant(1)));
        }
        constraints.push(le(LinExpr::var(vars[19]) - LinExpr::constant(100)));
        match check_feasibility(&constraints) {
            SimplexResult::Feasible(m) => check_model(&constraints, &m),
            SimplexResult::Infeasible => panic!("should be feasible"),
        }
        // tightening the last bound to 10 makes it infeasible
        constraints.pop();
        constraints.push(le(LinExpr::var(vars[19]) - LinExpr::constant(10)));
        assert_eq!(check_feasibility(&constraints), SimplexResult::Infeasible);
    }

    #[test]
    fn atoms_sharing_a_form_share_a_tableau_variable() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let mut simplex = IncrementalSimplex::new();
        // four scalings/shifts of the same form x + y: one slack variable
        simplex.prepare(&le(LinExpr::var(x) + LinExpr::var(y) - LinExpr::constant(3)));
        simplex.prepare(&ge(
            LinExpr::scaled_var(x, 2) + LinExpr::scaled_var(y, 2) - LinExpr::constant(8)
        ));
        simplex.prepare(&le(LinExpr::zero() - LinExpr::var(x) - LinExpr::var(y)));
        simplex.prepare(&eq(LinExpr::var(x) + LinExpr::var(y)));
        // two problem columns + one slack
        assert_eq!(simplex.num_tableau_vars(), 3);
    }

    #[test]
    fn assert_retract_roundtrip_restores_feasibility() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let mut simplex = IncrementalSimplex::new();
        simplex
            .assert_constraint(
                &eq(LinExpr::var(x) + LinExpr::var(y) - LinExpr::constant(5)),
                0,
            )
            .unwrap();
        simplex
            .assert_constraint(&ge(LinExpr::var(x) - LinExpr::constant(2)), 1)
            .unwrap();
        assert!(simplex.check().is_ok());
        let base = simplex.num_asserted();
        // x + y = 5 ∧ x ≥ 2 ∧ y ≥ 4 is infeasible
        simplex
            .assert_constraint(&ge(LinExpr::var(y) - LinExpr::constant(4)), 2)
            .unwrap();
        let core = simplex.check().expect_err("infeasible");
        assert!(
            core.contains(&2),
            "core {core:?} must involve the new bound"
        );
        simplex.retract_to(base);
        assert!(simplex.check().is_ok(), "retraction restores feasibility");
        check_model(
            &[
                eq(LinExpr::var(x) + LinExpr::var(y) - LinExpr::constant(5)),
                ge(LinExpr::var(x) - LinExpr::constant(2)),
            ],
            &simplex.model(),
        );
    }

    #[test]
    fn immediate_bound_clash_returns_both_tags() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let mut simplex = IncrementalSimplex::new();
        simplex
            .assert_constraint(&ge(LinExpr::var(x) - LinExpr::constant(3)), 7)
            .unwrap();
        let err = simplex
            .assert_constraint(&le(LinExpr::var(x) - LinExpr::constant(2)), 9)
            .expect_err("clashing bounds");
        assert_eq!(err.len(), 2);
        assert!(err.contains(&7) && err.contains(&9));
        // the failed assertion left no trace
        assert_eq!(simplex.num_asserted(), 1);
        assert!(simplex.check().is_ok());
    }

    #[test]
    fn levels_nest_and_pop_in_order() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let mut simplex = IncrementalSimplex::new();
        simplex.assert_constraint(&ge(LinExpr::var(x)), 0).unwrap();
        simplex.push_level();
        simplex
            .assert_constraint(&le(LinExpr::var(x) - LinExpr::constant(5)), 1)
            .unwrap();
        simplex.push_level();
        assert!(simplex
            .assert_constraint(&ge(LinExpr::var(x) - LinExpr::constant(9)), 2)
            .is_err());
        simplex.pop_level();
        assert!(simplex.check().is_ok());
        assert!(simplex
            .assert_constraint(&ge(LinExpr::var(x) - LinExpr::constant(9)), 3)
            .is_err());
        simplex.pop_to_level(0);
        assert!(simplex
            .assert_constraint(&ge(LinExpr::var(x) - LinExpr::constant(9)), 4)
            .is_ok());
        assert!(simplex.check().is_ok());
        assert!(simplex.model()[&x] >= Rat::from_int(9));
    }

    #[test]
    fn session_simplex_matches_one_shot_checks() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let base = vec![
            ge(LinExpr::var(x)),
            ge(LinExpr::var(y)),
            le(LinExpr::var(x) + LinExpr::var(y) - LinExpr::constant(6)),
        ];
        let mut branch_a = base.clone();
        branch_a.push(ge(LinExpr::var(x) - LinExpr::constant(7)));
        let mut branch_b = base.clone();
        branch_b.push(ge(LinExpr::var(x) - LinExpr::constant(4)));
        let mut branch_b2 = branch_b.clone();
        branch_b2.push(ge(LinExpr::var(y) - LinExpr::constant(3)));
        let mut session = SessionSimplex::new();
        for slice in [&base, &branch_a, &branch_b, &branch_b2, &base] {
            assert_eq!(
                session.infeasible(slice),
                !check_feasibility(slice).is_feasible(),
                "session disagrees with one-shot on {slice:?}"
            );
        }
    }
}
