//! Rational feasibility of conjunctions of linear constraints via the
//! *general simplex* algorithm of Dutertre & de Moura — in its full
//! **incremental, backtrackable** form.
//!
//! The central type is [`IncrementalSimplex`]: a tableau that lives for a
//! whole search (or a whole incremental solving session) instead of being
//! rebuilt per feasibility check.
//!
//! * **Atoms are registered once.**  Every constraint `Σ aᵢxᵢ + k ⋈ 0` is
//!   canonicalised to a *form* (coefficients divided by their gcd, leading
//!   sign positive, constant dropped).  A form with a single unit term is
//!   owned by the problem column itself; every other form gets one slack
//!   variable with the definitional row `s = Σ aᵢxᵢ`, created the first
//!   time the form is seen ([`IncrementalSimplex::prepare`]).  Atoms that
//!   differ only in their constant — the overwhelmingly common case in the
//!   CDCL(T) engine, where both polarities of a Boolean atom and all the
//!   branch bounds of branch-and-bound share a form — share one tableau
//!   variable.
//! * **Assertions are O(1) trail operations.**  Asserting a constraint
//!   ([`IncrementalSimplex::assert_prepared`]) tightens the owner
//!   variable's lower/upper bound, records the old bound on an undo trail,
//!   and (for a nonbasic owner) nudges the assignment inside the new
//!   bound.  No row is touched.  An immediately contradictory pair of
//!   bounds is reported with its two-element core without any pivoting.
//! * **Only `check` pivots, warm-starting from the previous basis.**  The
//!   `β` assignment and the basis survive assertions, retractions and
//!   earlier checks, so a re-check after one new bound typically pivots
//!   once or not at all — this is what makes the theory side of CDCL(T)
//!   as incremental as the Boolean side.
//! * **Rows are flat and sparse.**  A basic variable's row is a
//!   [`SparseRow`]: paired column/coefficient arrays sorted by column,
//!   drawn from a per-tableau arena and recycled across pivots instead of
//!   cloned.  A **column occurrence index** (`col_rows[j]` = the basic
//!   variables whose rows mention column `j`) is maintained through every
//!   pivot and assignment update, so `update`, `pivot_and_update` and
//!   `pivot` touch only the rows that actually contain the moving column
//!   instead of scanning the whole tableau.  The work saved is measured:
//!   [`IncrementalSimplex::row_touches`] counts rows actually visited,
//!   [`IncrementalSimplex::dense_row_touches`] the counterfactual cost of
//!   the old full scans, and both flow into `posr-obs` counters.
//! * **Backtracking** is stack-shaped: [`IncrementalSimplex::retract_to`]
//!   unwinds the bound trail to a given assertion count (the CDCL engine
//!   keeps assertions aligned with its theory-literal trail), and
//!   [`IncrementalSimplex::push_level`] / [`IncrementalSimplex::pop_level`]
//!   provide the same thing keyed by search depth (branch-and-bound).
//!   Retraction only ever *relaxes* bounds, so the current assignment
//!   stays consistent and nothing is recomputed.
//!
//! Infeasibility is reported with a **Farkas core**: the tags of an
//! irreducible jointly-infeasible set of asserted bounds (a stuck row's
//! violated bound plus the blocking bounds of its nonbasics).  Tags are
//! caller-chosen `u32`s — the CDCL engine passes theory-trail indices, so
//! cores translate directly into learned clauses.
//!
//! On top of the feasible assignment the engine runs **assignment-guided
//! theory propagation** (see `cdcl.rs`): after a consistent check, `β` is
//! a cheap necessary-condition filter for entailed atoms, and
//! [`IncrementalSimplex::implied_bound`] turns a candidate into an
//! entailment certificate (the asserted bounds of one row) without any
//! pivoting.
//!
//! The one-shot [`check_feasibility`] / [`check_feasibility_with_core`]
//! entry points survive as thin wrappers (register + assert + check on a
//! fresh tableau); [`SessionSimplex`] adapts the incremental tableau to
//! callers that present whole constraint *slices* that evolve
//! prefix-wise, like the structural DPLL(T) walk.
//!
//! Strict inequalities and disequalities never reach this layer: the
//! integer setting lets the upper layers rewrite `<`/`>` into `≤`/`≥`
//! with a shifted constant, and `≠` is split disjunctively.

use std::collections::{BTreeMap, HashMap};

use crate::rational::{gcd, Rat};
use crate::term::{LinExpr, Var};

/// Pivots performed across every tableau in the process (obs counter; the
/// per-engine number is derived from a `CounterScope` over this counter).
static OBS_PIVOTS: std::sync::LazyLock<posr_obs::Counter> =
    std::sync::LazyLock::new(|| posr_obs::counter("simplex.pivots"));

/// Rows actually visited through the occurrence index (process-wide).
static OBS_ROW_TOUCHES: std::sync::LazyLock<posr_obs::Counter> =
    std::sync::LazyLock::new(|| posr_obs::counter("simplex.row_touches"));

/// Counterfactual row visits a dense full-tableau scan would have made for
/// the same operations — the baseline the sparse win is measured against.
static OBS_DENSE_ROW_TOUCHES: std::sync::LazyLock<posr_obs::Counter> =
    std::sync::LazyLock::new(|| posr_obs::counter("simplex.row_touches.dense"));

/// The process-wide pivot counter (scopes attach to it for per-solve
/// attribution).
pub fn obs_pivot_counter() -> posr_obs::Counter {
    *OBS_PIVOTS
}

/// The process-wide sparse row-touch counter.
pub fn obs_row_touch_counter() -> posr_obs::Counter {
    *OBS_ROW_TOUCHES
}

/// The process-wide counterfactual dense row-touch counter.
pub fn obs_dense_row_touch_counter() -> posr_obs::Counter {
    *OBS_DENSE_ROW_TOUCHES
}

/// Relation of a simplex constraint `expr ⋈ bound`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rel {
    /// `expr ≤ bound`
    Le,
    /// `expr ≥ bound`
    Ge,
    /// `expr = bound`
    Eq,
}

/// A constraint handed to the simplex: `expr ⋈ 0` with `⋈ ∈ {≤, ≥, =}`.
/// The constant part of `expr` is honoured (it is moved to the bound side).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimplexConstraint {
    /// Linear expression (its constant part becomes part of the bound).
    pub expr: LinExpr,
    /// Relation against zero.
    pub rel: Rel,
}

/// Result of a feasibility check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimplexResult {
    /// The constraints are satisfiable over ℚ; a witness assignment for every
    /// variable occurring in the constraints is returned.
    Feasible(BTreeMap<Var, Rat>),
    /// The constraints are unsatisfiable over ℚ (hence also over ℤ).
    Infeasible,
}

impl SimplexResult {
    /// Returns `true` if feasible.
    pub fn is_feasible(&self) -> bool {
        matches!(self, SimplexResult::Feasible(_))
    }
}

/// Checks rational feasibility of a conjunction of constraints.
///
/// One-shot convenience over [`IncrementalSimplex`]: register and assert
/// every constraint on a fresh tableau, then run the check loop.
pub fn check_feasibility(constraints: &[SimplexConstraint]) -> SimplexResult {
    match check_feasibility_with_core(constraints) {
        Ok(model) => SimplexResult::Feasible(model),
        Err(_) => SimplexResult::Infeasible,
    }
}

/// [`check_feasibility`] with a Farkas-style core on infeasibility: the
/// `Err` value indexes an irreducible infeasible subset of `constraints`.
pub fn check_feasibility_with_core(
    constraints: &[SimplexConstraint],
) -> Result<BTreeMap<Var, Rat>, Vec<usize>> {
    let mut simplex = IncrementalSimplex::new();
    for (i, c) in constraints.iter().enumerate() {
        if let Err(core) = simplex.assert_constraint(c, i as u32) {
            return Err(core_to_indices(core));
        }
    }
    match simplex.check() {
        Ok(()) => Ok(simplex.model()),
        Err(core) => Err(core_to_indices(core)),
    }
}

fn core_to_indices(core: Vec<u32>) -> Vec<usize> {
    let mut out: Vec<usize> = core.into_iter().map(|t| t as usize).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// The tableau variable that owns a canonicalised constraint form.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Owner {
    /// The form had no variables; `true` iff the (constant) constraint
    /// evaluated to a satisfied comparison at preparation time is decided
    /// per bound at assert time instead — this variant only records that
    /// there is nothing to assert on.
    Constant,
    /// Internal tableau variable (problem column or slack).
    Tableau(usize),
}

/// A constraint pre-compiled against a tableau: the owning variable plus
/// the bound(s) it asserts, ready for O(1) assertion.  Produced by
/// [`IncrementalSimplex::prepare`]; the CDCL engine caches one per theory
/// literal at registration time.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PreparedBound {
    owner: Owner,
    /// `owner ≥ lo` to assert (already sign/scale-normalised).
    lo: Option<Rat>,
    /// `owner ≤ hi` to assert.
    hi: Option<Rat>,
    /// For `Owner::Constant`: whether the constraint holds.
    const_sat: bool,
}

impl PreparedBound {
    /// The tableau column that owns this bound (`None` for constant
    /// constraints).  Used by assignment-guided propagation to group the
    /// atoms asserting on one column.
    pub(crate) fn tableau_owner(&self) -> Option<usize> {
        match self.owner {
            Owner::Constant => None,
            Owner::Tableau(x) => Some(x),
        }
    }

    /// The normalised lower bound this constraint asserts, if any.
    pub(crate) fn lo(&self) -> Option<Rat> {
        self.lo
    }

    /// The normalised upper bound this constraint asserts, if any.
    pub(crate) fn hi(&self) -> Option<Rat> {
        self.hi
    }
}

/// One undone bound change: which side of which variable, and the value
/// (with its tag) it had before.
struct UndoEntry {
    var: usize,
    upper: bool,
    old: Option<(Rat, u32)>,
}

/// A flat sparse row: paired column/coefficient arrays, columns strictly
/// ascending, coefficients nonzero.  Rows are recycled through the
/// tableau's arena instead of being reallocated per pivot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct SparseRow {
    cols: Vec<u32>,
    coeffs: Vec<Rat>,
}

impl SparseRow {
    fn clear(&mut self) {
        self.cols.clear();
        self.coeffs.clear();
    }

    fn len(&self) -> usize {
        self.cols.len()
    }

    /// Coefficient of `col`, by binary search.
    fn get(&self, col: usize) -> Option<Rat> {
        self.cols
            .binary_search(&(col as u32))
            .ok()
            .map(|i| self.coeffs[i])
    }

    /// Appends an entry; `col` must exceed every column already present.
    fn push(&mut self, col: usize, coeff: Rat) {
        debug_assert!(self.cols.last().is_none_or(|&c| c < col as u32));
        debug_assert!(!coeff.is_zero());
        self.cols.push(col as u32);
        self.coeffs.push(coeff);
    }

    /// `(column, coefficient)` pairs in ascending column order.
    fn iter(&self) -> impl Iterator<Item = (usize, Rat)> + '_ {
        self.cols
            .iter()
            .zip(&self.coeffs)
            .map(|(&c, &a)| (c as usize, a))
    }
}

/// Drops `owner` from one column's occurrence list (order is not
/// significant, so the removal is a swap).
fn remove_occ(occ: &mut Vec<u32>, owner: usize) {
    if let Some(pos) = occ.iter().position(|&o| o == owner as u32) {
        occ.swap_remove(pos);
    }
}

/// The persistent, backtrackable general-simplex tableau (see the module
/// docs for the architecture).
pub struct IncrementalSimplex {
    /// Problem variable → internal tableau index.
    var_cols: HashMap<Var, usize>,
    /// Internal index → problem variable (`None` for slacks).
    col_vars: Vec<Option<Var>>,
    /// Canonical form → slack internal index.
    forms: HashMap<LinExpr, usize>,
    /// `rows[b]` is `Some(row)` iff variable `b` is basic, with
    /// `x_b = Σ row[n]·x_n` over the nonbasic variables `n`.
    rows: Vec<Option<SparseRow>>,
    /// Occurrence index: `col_rows[j]` lists the basic variables whose
    /// rows contain column `j` (unordered, duplicate-free).
    col_rows: Vec<Vec<u32>>,
    /// Arena of retired rows, recycled by the next pivot or slack.
    row_pool: Vec<SparseRow>,
    /// Lower bounds per variable, tagged with the asserting constraint.
    lower: Vec<Option<(Rat, u32)>>,
    /// Upper bounds per variable, tagged with the asserting constraint.
    upper: Vec<Option<(Rat, u32)>>,
    /// Current assignment per variable (kept consistent at all times:
    /// every basic value equals its row evaluated at the nonbasics).
    beta: Vec<Rat>,
    /// Undo trail of bound changes.
    undo: Vec<UndoEntry>,
    /// Per successful assertion: the undo-trail length before it.
    assert_marks: Vec<usize>,
    /// Per open level: the assertion count when it was pushed.
    level_marks: Vec<usize>,
    /// Candidate bound violations: every basic variable whose assignment
    /// or bounds moved since it was last verified in-bounds.  A superset
    /// of the actually-violating basics (violations only arise from those
    /// events), so `check` scans this set instead of the whole column
    /// range — the per-fixpoint eager checks of theory propagation would
    /// otherwise pay a dense scan each, pivoting or not.
    suspect: Vec<u32>,
    /// `suspect_flag[v]` ⇔ `v` is in `suspect` (dedup guard).
    suspect_flag: Vec<bool>,
    /// Cumulative pivot count (never reset; the engine reads deltas).
    pivots: u64,
    /// Rows visited through the occurrence index (cumulative).
    row_touches: u64,
    /// Rows a dense full scan would have visited for the same operations.
    dense_row_touches: u64,
    /// High-water marks of what `flush_obs` already pushed to the
    /// process-wide counters.
    obs_pivots_flushed: u64,
    obs_touches_flushed: u64,
    obs_dense_flushed: u64,
}

impl Default for IncrementalSimplex {
    fn default() -> IncrementalSimplex {
        IncrementalSimplex::new()
    }
}

impl IncrementalSimplex {
    /// An empty tableau.
    pub fn new() -> IncrementalSimplex {
        IncrementalSimplex {
            var_cols: HashMap::new(),
            col_vars: Vec::new(),
            forms: HashMap::new(),
            rows: Vec::new(),
            col_rows: Vec::new(),
            row_pool: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            beta: Vec::new(),
            undo: Vec::new(),
            assert_marks: Vec::new(),
            level_marks: Vec::new(),
            suspect: Vec::new(),
            suspect_flag: Vec::new(),
            pivots: 0,
            row_touches: 0,
            dense_row_touches: 0,
            obs_pivots_flushed: 0,
            obs_touches_flushed: 0,
            obs_dense_flushed: 0,
        }
    }

    /// Number of currently asserted constraints.
    pub fn num_asserted(&self) -> usize {
        self.assert_marks.len()
    }

    /// Cumulative structural pivots performed by [`IncrementalSimplex::check`].
    pub fn pivots(&self) -> u64 {
        self.pivots
    }

    /// Cumulative rows visited through the occurrence index by assignment
    /// updates and pivots.
    pub fn row_touches(&self) -> u64 {
        self.row_touches
    }

    /// Cumulative rows a dense full-tableau scan would have visited for
    /// the same operations — the baseline [`IncrementalSimplex::row_touches`]
    /// is measured against.
    pub fn dense_row_touches(&self) -> u64 {
        self.dense_row_touches
    }

    /// Number of tableau variables (problem columns plus slacks).
    pub fn num_tableau_vars(&self) -> usize {
        self.beta.len()
    }

    fn alloc_row(&mut self) -> SparseRow {
        match self.row_pool.pop() {
            Some(mut row) => {
                row.clear();
                row
            }
            None => SparseRow::default(),
        }
    }

    fn free_row(&mut self, row: SparseRow) {
        self.row_pool.push(row);
    }

    fn add_var(&mut self, problem: Option<Var>) -> usize {
        let idx = self.beta.len();
        self.col_vars.push(problem);
        self.rows.push(None);
        self.col_rows.push(Vec::new());
        self.lower.push(None);
        self.upper.push(None);
        self.beta.push(Rat::ZERO);
        self.suspect_flag.push(false);
        // approximate per-column tableau growth for the memory budget
        posr_obs::budget::charge_mem(160);
        idx
    }

    /// Queues `v` for re-verification by the next `check`.
    #[inline]
    fn mark_suspect(&mut self, v: usize) {
        if !self.suspect_flag[v] {
            self.suspect_flag[v] = true;
            self.suspect.push(v as u32);
        }
    }

    fn col_of(&mut self, v: Var) -> usize {
        if let Some(&c) = self.var_cols.get(&v) {
            return c;
        }
        let c = self.add_var(Some(v));
        self.var_cols.insert(v, c);
        c
    }

    /// The slack variable of a canonical form, creating it (and its
    /// definitional row, expressed over the *current* nonbasics) on first
    /// sight.  New slacks can be registered at any point of a session —
    /// basic variables in the form are substituted by their rows, and the
    /// slack's assignment is computed from the current one, so the tableau
    /// invariants hold immediately.
    fn slack_of(&mut self, form: &LinExpr) -> usize {
        if let Some(&s) = self.forms.get(form) {
            return s;
        }
        // cold path: accumulate in a map, then freeze into a sparse row
        let mut row: BTreeMap<usize, Rat> = BTreeMap::new();
        for (v, c) in form.terms() {
            let col = self.col_of(v);
            let coeff = Rat::from_int(c);
            match &self.rows[col] {
                Some(def) => {
                    for (j, a) in def.iter() {
                        let entry = row.entry(j).or_insert(Rat::ZERO);
                        *entry += coeff * a;
                    }
                }
                None => {
                    let entry = row.entry(col).or_insert(Rat::ZERO);
                    *entry += coeff;
                }
            }
        }
        row.retain(|_, r| !r.is_zero());
        let mut value = Rat::ZERO;
        for (&j, &a) in &row {
            value += a * self.beta[j];
        }
        let s = self.add_var(None);
        let mut frozen = self.alloc_row();
        for (&j, &a) in &row {
            frozen.push(j, a);
            self.col_rows[j].push(s as u32);
        }
        self.rows[s] = Some(frozen);
        self.beta[s] = value;
        self.forms.insert(form.clone(), s);
        s
    }

    /// Pre-compiles a constraint: canonicalises its form, registers the
    /// owning tableau variable (idempotent), and normalises the bound so
    /// assertion is a constant-time trail operation.
    pub fn prepare(&mut self, constraint: &SimplexConstraint) -> PreparedBound {
        let k = constraint.expr.constant_part();
        if constraint.expr.is_constant() {
            let const_sat = match constraint.rel {
                Rel::Le => k <= 0,
                Rel::Ge => k >= 0,
                Rel::Eq => k == 0,
            };
            return PreparedBound {
                owner: Owner::Constant,
                lo: None,
                hi: None,
                const_sat,
            };
        }
        // canonical form: coefficients divided by their gcd, first
        // coefficient positive, constant dropped
        let mut g: i128 = 0;
        let mut first_sign: i128 = 0;
        for (_, c) in constraint.expr.terms() {
            g = gcd(g, c);
            if first_sign == 0 {
                first_sign = if c > 0 { 1 } else { -1 };
            }
        }
        let scale = g * first_sign; // expr = scale · form + k
        let mut form = LinExpr::zero();
        for (v, c) in constraint.expr.terms() {
            form.add_term(v, c / scale);
        }
        // expr ⋈ 0  ⟺  form ⋈ −k/scale (relation flips when scale < 0)
        let bound = Rat::from_int(-k) / Rat::from_int(scale);
        let rel = match (constraint.rel, scale > 0) {
            (rel, true) => rel,
            (Rel::Le, false) => Rel::Ge,
            (Rel::Ge, false) => Rel::Le,
            (Rel::Eq, false) => Rel::Eq,
        };
        let owner = if form.num_terms() == 1 {
            // canonical single-term forms have coefficient 1: the problem
            // column itself owns the bound, no slack row is needed
            let v = form.variables().next().expect("single term");
            Owner::Tableau(self.col_of(v))
        } else {
            Owner::Tableau(self.slack_of(&form))
        };
        let (lo, hi) = match rel {
            Rel::Le => (None, Some(bound)),
            Rel::Ge => (Some(bound), None),
            Rel::Eq => (Some(bound), Some(bound)),
        };
        PreparedBound {
            owner,
            lo,
            hi,
            const_sat: true,
        }
    }

    /// Asserts a pre-compiled constraint under `tag`.  O(1): tightens the
    /// owner's interval (recording the old bound for backtracking) and, for
    /// a nonbasic owner, moves its value inside the new bound.  On an
    /// immediate contradiction (`lo > hi`) the state is left unchanged and
    /// the two clashing tags are returned.
    pub fn assert_prepared(&mut self, prepared: &PreparedBound, tag: u32) -> Result<(), Vec<u32>> {
        let mark = self.undo.len();
        let x = match prepared.owner {
            Owner::Constant => {
                if prepared.const_sat {
                    self.assert_marks.push(mark);
                    return Ok(());
                }
                return Err(vec![tag]);
            }
            Owner::Tableau(x) => x,
        };
        if let Some(lo) = prepared.lo {
            if let Some((hi, hi_tag)) = self.upper[x] {
                if lo > hi {
                    return Err(vec![hi_tag, tag]);
                }
            }
            if self.lower[x].is_none_or(|(cur, _)| lo > cur) {
                self.undo.push(UndoEntry {
                    var: x,
                    upper: false,
                    old: self.lower[x],
                });
                self.lower[x] = Some((lo, tag));
                if self.rows[x].is_none() {
                    if self.beta[x] < lo {
                        self.update(x, lo);
                    }
                } else if self.beta[x] < lo {
                    self.mark_suspect(x);
                }
            }
        }
        if let Some(hi) = prepared.hi {
            if let Some((lo, lo_tag)) = self.lower[x] {
                if hi < lo {
                    // roll back a lower bound this same assertion recorded
                    self.unwind_to(mark);
                    return Err(vec![lo_tag, tag]);
                }
            }
            if self.upper[x].is_none_or(|(cur, _)| hi < cur) {
                self.undo.push(UndoEntry {
                    var: x,
                    upper: true,
                    old: self.upper[x],
                });
                self.upper[x] = Some((hi, tag));
                if self.rows[x].is_none() {
                    if self.beta[x] > hi {
                        self.update(x, hi);
                    }
                } else if self.beta[x] > hi {
                    self.mark_suspect(x);
                }
            }
        }
        self.assert_marks.push(mark);
        Ok(())
    }

    /// [`IncrementalSimplex::prepare`] + [`IncrementalSimplex::assert_prepared`]
    /// for callers without a preparation cache.
    pub fn assert_constraint(
        &mut self,
        constraint: &SimplexConstraint,
        tag: u32,
    ) -> Result<(), Vec<u32>> {
        let prepared = self.prepare(constraint);
        self.assert_prepared(&prepared, tag)
    }

    /// Retracts assertions (most recent first) until at most `n` remain,
    /// restoring the bounds they tightened.  Bounds only relax, so the
    /// current assignment — and the basis — stay valid.
    pub fn retract_to(&mut self, n: usize) {
        while self.assert_marks.len() > n {
            let mark = self.assert_marks.pop().expect("non-empty");
            self.unwind_to(mark);
        }
        // levels opened above the surviving assertions are gone too
        while self
            .level_marks
            .last()
            .is_some_and(|&m| m > self.assert_marks.len())
        {
            self.level_marks.pop();
        }
    }

    fn unwind_to(&mut self, mark: usize) {
        while self.undo.len() > mark {
            let entry = self.undo.pop().expect("non-empty");
            if entry.upper {
                self.upper[entry.var] = entry.old;
            } else {
                self.lower[entry.var] = entry.old;
            }
        }
    }

    /// Opens a backtracking level (branch-and-bound style).
    pub fn push_level(&mut self) {
        self.level_marks.push(self.assert_marks.len());
    }

    /// Closes the innermost level, retracting its assertions.
    pub fn pop_level(&mut self) {
        if let Some(n) = self.level_marks.pop() {
            self.retract_to(n);
        }
    }

    /// Pops levels until at most `depth` remain open.
    pub fn pop_to_level(&mut self, depth: usize) {
        while self.level_marks.len() > depth {
            self.pop_level();
        }
    }

    /// Number of open levels.
    pub fn num_levels(&self) -> usize {
        self.level_marks.len()
    }

    fn is_basic(&self, v: usize) -> bool {
        self.rows[v].is_some()
    }

    /// `true` iff `col` is a slack (owns a multi-term form).
    pub(crate) fn is_slack(&self, col: usize) -> bool {
        self.col_vars[col].is_none()
    }

    /// Current assignment of a tableau column.
    pub(crate) fn beta_of(&self, col: usize) -> Rat {
        self.beta[col]
    }

    /// The basic variables whose rows currently contain `col` (the
    /// occurrence index entry) — i.e. whose implied row bounds a bound
    /// change on `col` can move.
    pub(crate) fn rows_containing(&self, col: usize) -> &[u32] {
        &self.col_rows[col]
    }

    /// The bound on `col` implied by the *asserted* bounds alone (no
    /// pivoting): for a nonbasic column its own asserted bound; for a
    /// basic column the row sum `Σ aⱼ·bound(xⱼ)`, taking each nonbasic's
    /// upper bound when `upper == aⱼ > 0` and its lower bound otherwise.
    /// The tags of every contributing bound are pushed onto `tags` —
    /// exactly the premises of the entailment, ready to become a lazy
    /// explanation.  Returns `None` when a needed bound is missing or the
    /// row is longer than `row_cap`; `tags` may then hold a partial prefix
    /// and the caller is expected to clear it.
    pub(crate) fn implied_bound(
        &self,
        col: usize,
        upper: bool,
        row_cap: usize,
        tags: &mut Vec<u32>,
    ) -> Option<Rat> {
        match &self.rows[col] {
            None => {
                let (v, tag) = if upper {
                    self.upper[col]?
                } else {
                    self.lower[col]?
                };
                tags.push(tag);
                Some(v)
            }
            Some(row) => {
                if row.len() > row_cap {
                    return None;
                }
                let mut sum = Rat::ZERO;
                for (n, a) in row.iter() {
                    let (v, tag) = if upper == a.is_positive() {
                        self.upper[n]?
                    } else {
                        self.lower[n]?
                    };
                    tags.push(tag);
                    sum += a * v;
                }
                Some(sum)
            }
        }
    }

    fn violates_lower(&self, v: usize) -> bool {
        matches!(self.lower[v], Some((l, _)) if self.beta[v] < l)
    }

    fn violates_upper(&self, v: usize) -> bool {
        matches!(self.upper[v], Some((u, _)) if self.beta[v] > u)
    }

    /// Sets nonbasic `n` to `v`, propagating the delta into the basics
    /// whose rows contain `n` (straight off the occurrence index).
    fn update(&mut self, n: usize, v: Rat) {
        let delta = v - self.beta[n];
        self.beta[n] = v;
        if delta.is_zero() {
            return;
        }
        self.dense_row_touches += self.beta.len() as u64;
        self.row_touches += self.col_rows[n].len() as u64;
        for idx in 0..self.col_rows[n].len() {
            let b = self.col_rows[n][idx] as usize;
            let a_bn = self.rows[b]
                .as_ref()
                .expect("occurrence owner is basic")
                .get(n)
                .expect("indexed row contains the column");
            self.beta[b] += a_bn * delta;
            self.mark_suspect(b);
        }
    }

    /// Pivot basic variable `b` with nonbasic variable `n` and set `b` to `v`.
    fn pivot_and_update(&mut self, b: usize, n: usize, v: Rat) {
        let row_b = self.rows[b].take().expect("b must be basic");
        let a_bn = row_b.get(n).expect("n must occur in the row of b");
        let theta = (v - self.beta[b]) / a_bn;
        self.beta[b] = v;
        self.beta[n] += theta;
        // n enters the basis with a moved assignment: it may overshoot its
        // other bound, which is exactly what keeps the check loop going
        self.mark_suspect(n);
        self.dense_row_touches += self.beta.len() as u64;
        self.row_touches += self.col_rows[n].len() as u64;
        for idx in 0..self.col_rows[n].len() {
            let other = self.col_rows[n][idx] as usize;
            if other == b {
                continue; // b's value was already set to the target
            }
            let a_on = self.rows[other]
                .as_ref()
                .expect("occurrence owner is basic")
                .get(n)
                .expect("indexed row contains the column");
            self.beta[other] += a_on * theta;
            self.mark_suspect(other);
        }
        self.pivot(b, n, row_b, a_bn);
        self.pivots += 1;
    }

    /// Structural pivot: `b` leaves the basis, `n` enters it.  Touches only
    /// the rows the occurrence index lists for `n`; `row_b` is consumed and
    /// recycled through the arena.
    fn pivot(&mut self, b: usize, n: usize, row_b: SparseRow, a_bn: Rat) {
        // b's row disappears: drop b from the occurrence lists of its
        // columns first, so the index never points at a missing row (this
        // also removes b from col_rows[n] before it is drained below)
        for (k, _) in row_b.iter() {
            remove_occ(&mut self.col_rows[k], b);
        }
        // n = (b - Σ_{k≠n} a_bk·k) / a_bn — build n's row sorted, merging
        // the new column b into position
        let inv = Rat::ONE / a_bn;
        let mut new_row_n = self.alloc_row();
        let mut b_inserted = false;
        for (k, a_bk) in row_b.iter() {
            if k == n {
                continue;
            }
            if !b_inserted && b < k {
                new_row_n.push(b, inv);
                b_inserted = true;
            }
            new_row_n.push(k, -a_bk * inv);
        }
        if !b_inserted {
            new_row_n.push(b, inv);
        }
        // substitute n in exactly the rows that contain it
        let occ = std::mem::take(&mut self.col_rows[n]);
        self.dense_row_touches += self.rows.len() as u64;
        self.row_touches += occ.len() as u64;
        for &o in &occ {
            let other = o as usize;
            debug_assert_ne!(other, b, "b was removed from the index above");
            let old = self.rows[other].take().expect("occurrence owner is basic");
            let a_on = old.get(n).expect("indexed row contains the column");
            let merged = self.substitute(other, &old, n, a_on, &new_row_n);
            self.free_row(old);
            self.rows[other] = Some(merged);
        }
        // n becomes basic; register its row in the occurrence index
        for (k, _) in new_row_n.iter() {
            self.col_rows[k].push(n as u32);
        }
        self.rows[n] = Some(new_row_n);
        self.free_row(row_b);
    }

    /// `old − old[drop_col]·drop_col + a_on·sub`, as a sorted two-pointer
    /// merge.  Maintains the occurrence index for `owner`: fill-in columns
    /// gain `owner`, cancelled columns lose it (`drop_col` itself was
    /// already drained by the caller).
    fn substitute(
        &mut self,
        owner: usize,
        old: &SparseRow,
        drop_col: usize,
        a_on: Rat,
        sub: &SparseRow,
    ) -> SparseRow {
        let mut out = self.alloc_row();
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            let ci = old.cols.get(i).copied();
            let cj = sub.cols.get(j).copied();
            let (take_old, take_sub) = match (ci, cj) {
                (Some(a), Some(b)) => (a <= b, b <= a),
                (Some(_), None) => (true, false),
                (None, Some(_)) => (false, true),
                (None, None) => break,
            };
            if take_old && take_sub {
                let k = ci.expect("both present") as usize;
                debug_assert_ne!(k, drop_col, "sub never contains the dropped column");
                let v = old.coeffs[i] + a_on * sub.coeffs[j];
                if v.is_zero() {
                    // cancellation: owner's row no longer mentions k
                    remove_occ(&mut self.col_rows[k], owner);
                } else {
                    out.push(k, v);
                }
                i += 1;
                j += 1;
            } else if take_old {
                let k = ci.expect("old present") as usize;
                if k != drop_col {
                    out.push(k, old.coeffs[i]);
                }
                i += 1;
            } else {
                let k = cj.expect("sub present") as usize;
                // fill-in: owner's row gains column k
                out.push(k, a_on * sub.coeffs[j]);
                self.col_rows[k].push(owner as u32);
                j += 1;
            }
        }
        out
    }

    /// Runs the check loop (Bland's rule for termination), warm-starting
    /// from the current basis and assignment.  `Err` carries the tags of a
    /// Farkas certificate — an irreducible jointly-infeasible subset of the
    /// asserted bounds (the stuck row's violated bound plus the blocking
    /// bounds of its nonbasics).
    pub fn check(&mut self) -> Result<(), Vec<u32>> {
        self.check_budgeted(u64::MAX)
            .expect("an unbounded check always reaches a verdict")
    }

    /// [`IncrementalSimplex::check`] with a pivot budget: `None` means the
    /// budget ran out before a verdict.  The tableau is left in a
    /// consistent mid-loop state (invariants hold, remaining violations
    /// stay queued in the suspect set), so a later call resumes the pivot
    /// sequence where this one stopped — eager callers use a small budget
    /// to harvest cheap propagations without stalling on a tableau that
    /// needs real pivot work, which the leaf check then finishes.
    pub fn check_budgeted(&mut self, max_pivots: u64) -> Option<Result<(), Vec<u32>>> {
        let _span = posr_obs::span!("simplex", "simplex.pivot-session");
        // chaos-test injection point: a leaf check may panic (unwinds to
        // the entry-point catch), stall, or simulate a coefficient
        // overflow exactly where the real ones happen
        if let Some(posr_obs::FaultKind::Overflow) = posr_obs::fault::fire(
            "simplex.check",
            &[
                posr_obs::FaultKind::Panic,
                posr_obs::FaultKind::Delay,
                posr_obs::FaultKind::Overflow,
            ],
        ) {
            crate::rational::overflow_panic();
        }
        let result = self.check_loop(max_pivots);
        self.flush_obs();
        result
    }

    /// Pushes the counter deltas accumulated since the last flush to the
    /// process-wide obs counters (pivots change only inside `check`, but
    /// row touches also accrue in assert-time `update`s — the watermark
    /// catches those at the next check).
    fn flush_obs(&mut self) {
        OBS_PIVOTS.add(self.pivots - self.obs_pivots_flushed);
        self.obs_pivots_flushed = self.pivots;
        OBS_ROW_TOUCHES.add(self.row_touches - self.obs_touches_flushed);
        self.obs_touches_flushed = self.row_touches;
        OBS_DENSE_ROW_TOUCHES.add(self.dense_row_touches - self.obs_dense_flushed);
        self.obs_dense_flushed = self.dense_row_touches;
    }

    fn check_loop(&mut self, max_pivots: u64) -> Option<Result<(), Vec<u32>>> {
        let mut budget = max_pivots;
        loop {
            // smallest basic variable violating one of its bounds — drawn
            // from the suspect set, which is a superset of the violating
            // basics (so the minimum over it is the true Bland minimum, and
            // the pivot sequence matches a dense scan exactly); verified
            // in-bounds suspects are dropped until an assignment or bound
            // event re-queues them
            let mut min_violating: Option<usize> = None;
            let mut i = 0;
            while i < self.suspect.len() {
                let v = self.suspect[i] as usize;
                if self.is_basic(v) && (self.violates_lower(v) || self.violates_upper(v)) {
                    if min_violating.is_none_or(|m| v < m) {
                        min_violating = Some(v);
                    }
                    i += 1;
                } else {
                    self.suspect_flag[v] = false;
                    self.suspect.swap_remove(i);
                }
            }
            let Some(b) = min_violating else {
                return Some(Ok(()));
            };
            if budget == 0 {
                return None;
            }
            budget -= 1;
            debug_assert_eq!(
                Some(b),
                (0..self.beta.len()).find(
                    |&v| self.is_basic(v) && (self.violates_lower(v) || self.violates_upper(v))
                ),
                "suspect set must select the dense Bland minimum"
            );
            let lower_violation = self.violates_lower(b);
            let target = if lower_violation {
                self.lower[b].expect("violated lower bound exists").0
            } else {
                self.upper[b].expect("violated upper bound exists").0
            };
            // Bland's rule: the *smallest* suitable nonbasic — rows keep
            // their columns sorted, so the first hit is the smallest.  A
            // lower violation needs β(b) to rise: a > 0 nonbasics must be
            // free to increase (below their upper bound), a < 0 free to
            // decrease — and dually for an upper violation.
            let row = self.rows[b].as_ref().expect("basic");
            let candidate = row
                .iter()
                .find(|&(n, a)| {
                    debug_assert!(!self.is_basic(n));
                    if lower_violation == a.is_positive() {
                        self.upper[n].is_none_or(|(u, _)| self.beta[n] < u)
                    } else {
                        self.lower[n].is_none_or(|(l, _)| self.beta[n] > l)
                    }
                })
                .map(|(n, _)| n);
            match candidate {
                None => return Some(Err(self.conflict_core(b, lower_violation))),
                Some(n) => self.pivot_and_update(b, n, target),
            }
        }
    }

    /// The bound tags of the Farkas certificate at a stuck row: when basic
    /// `b` violates a bound and no nonbasic in its row can move, every
    /// nonbasic is pinned at its blocking bound — those bounds plus the
    /// violated one are jointly infeasible, and the set is irreducible by
    /// construction.
    fn conflict_core(&self, b: usize, lower_violation: bool) -> Vec<u32> {
        let row = self.rows[b].as_ref().expect("basic");
        let mut core = Vec::with_capacity(row.len() + 1);
        let own = if lower_violation {
            self.lower[b].expect("violated bound").1
        } else {
            self.upper[b].expect("violated bound").1
        };
        core.push(own);
        for (n, a) in row.iter() {
            // lower violation needs β(b) to rise: a > 0 nonbasics are
            // blocked at their upper bound, a < 0 at their lower (and
            // dually for an upper violation)
            let blocking_upper = lower_violation == a.is_positive();
            let tag = if blocking_upper {
                self.upper[n].expect("blocking bound").1
            } else {
                self.lower[n].expect("blocking bound").1
            };
            core.push(tag);
        }
        core.sort_unstable();
        core.dedup();
        core
    }

    /// The current rational assignment of the registered problem variables.
    pub fn model(&self) -> BTreeMap<Var, Rat> {
        let mut out = BTreeMap::new();
        for (&var, &col) in &self.var_cols {
            out.insert(var, self.beta[col]);
        }
        out
    }
}

/// Adapts the incremental tableau to callers that re-check whole
/// constraint *slices* that evolve prefix-wise (clone-and-extend DFS, like
/// the structural DPLL(T) walk): each call retracts to the longest common
/// prefix with the previous one and asserts only the new suffix.
#[derive(Default)]
pub struct SessionSimplex {
    simplex: IncrementalSimplex,
    asserted: Vec<SimplexConstraint>,
}

impl SessionSimplex {
    /// An empty session.
    pub fn new() -> SessionSimplex {
        SessionSimplex::default()
    }

    /// Cumulative pivots of the underlying tableau.
    pub fn pivots(&self) -> u64 {
        self.simplex.pivots()
    }

    /// `true` iff the conjunction is rationally infeasible, reusing the
    /// tableau state shared with the previous call's constraint prefix.
    pub fn infeasible(&mut self, constraints: &[SimplexConstraint]) -> bool {
        let common = self
            .asserted
            .iter()
            .zip(constraints)
            .take_while(|(a, b)| a == b)
            .count();
        self.simplex.retract_to(common);
        self.asserted.truncate(common);
        for c in &constraints[common..] {
            if self
                .simplex
                .assert_constraint(c, self.asserted.len() as u32)
                .is_err()
            {
                return true;
            }
            self.asserted.push(c.clone());
        }
        self.simplex.check().is_err()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarPool;

    fn le(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Le }
    }
    fn ge(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Ge }
    }
    fn eq(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Eq }
    }

    fn check_model(constraints: &[SimplexConstraint], model: &BTreeMap<Var, Rat>) {
        for c in constraints {
            let mut value = Rat::from_int(c.expr.constant_part());
            for (v, coeff) in c.expr.terms() {
                value += Rat::from_int(coeff) * model.get(&v).copied().unwrap_or(Rat::ZERO);
            }
            let ok = match c.rel {
                Rel::Le => value <= Rat::ZERO,
                Rel::Ge => value >= Rat::ZERO,
                Rel::Eq => value == Rat::ZERO,
            };
            assert!(ok, "model violates constraint {:?} (value {value})", c.rel);
        }
    }

    #[test]
    fn simple_feasible_system() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // x + y = 5, x >= 2, y >= 2
        let constraints = vec![
            eq(LinExpr::var(x) + LinExpr::var(y) - LinExpr::constant(5)),
            ge(LinExpr::var(x) - LinExpr::constant(2)),
            ge(LinExpr::var(y) - LinExpr::constant(2)),
        ];
        match check_feasibility(&constraints) {
            SimplexResult::Feasible(m) => check_model(&constraints, &m),
            SimplexResult::Infeasible => panic!("should be feasible"),
        }
    }

    #[test]
    fn simple_infeasible_system() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        // x >= 3 and x <= 2
        let constraints = vec![
            ge(LinExpr::var(x) - LinExpr::constant(3)),
            le(LinExpr::var(x) - LinExpr::constant(2)),
        ];
        assert_eq!(check_feasibility(&constraints), SimplexResult::Infeasible);
    }

    #[test]
    fn infeasible_needs_combination() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // x + y >= 10, x <= 3, y <= 3
        let constraints = vec![
            ge(LinExpr::var(x) + LinExpr::var(y) - LinExpr::constant(10)),
            le(LinExpr::var(x) - LinExpr::constant(3)),
            le(LinExpr::var(y) - LinExpr::constant(3)),
        ];
        assert_eq!(check_feasibility(&constraints), SimplexResult::Infeasible);
    }

    #[test]
    fn rational_solution_found() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        // 2x = 1
        let constraints = vec![eq(LinExpr::scaled_var(x, 2) - LinExpr::constant(1))];
        match check_feasibility(&constraints) {
            SimplexResult::Feasible(m) => {
                assert_eq!(m[&x], Rat::new(1, 2));
            }
            SimplexResult::Infeasible => panic!("should be feasible"),
        }
    }

    #[test]
    fn equalities_propagate() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let z = pool.fresh("z");
        // x = y, y = z, x + y + z = 9 -> all 3
        let constraints = vec![
            eq(LinExpr::var(x) - LinExpr::var(y)),
            eq(LinExpr::var(y) - LinExpr::var(z)),
            eq(LinExpr::var(x) + LinExpr::var(y) + LinExpr::var(z) - LinExpr::constant(9)),
        ];
        match check_feasibility(&constraints) {
            SimplexResult::Feasible(m) => {
                check_model(&constraints, &m);
                assert_eq!(m[&x], Rat::from_int(3));
            }
            SimplexResult::Infeasible => panic!("should be feasible"),
        }
    }

    #[test]
    fn constant_contradiction() {
        // 0 >= 1 expressed as an expression with no variables
        let constraints = vec![ge(LinExpr::constant(-1))];
        assert_eq!(check_feasibility(&constraints), SimplexResult::Infeasible);
        let constraints = vec![ge(LinExpr::constant(1))];
        assert!(check_feasibility(&constraints).is_feasible());
    }

    #[test]
    fn larger_chain_is_feasible() {
        let mut pool = VarPool::new();
        let vars: Vec<Var> = (0..20).map(|i| pool.fresh(&format!("x{i}"))).collect();
        // x0 >= 1, x_{i+1} >= x_i + 1, x_19 <= 100
        let mut constraints = vec![ge(LinExpr::var(vars[0]) - LinExpr::constant(1))];
        for w in vars.windows(2) {
            constraints.push(ge(LinExpr::var(w[1])
                - LinExpr::var(w[0])
                - LinExpr::constant(1)));
        }
        constraints.push(le(LinExpr::var(vars[19]) - LinExpr::constant(100)));
        match check_feasibility(&constraints) {
            SimplexResult::Feasible(m) => check_model(&constraints, &m),
            SimplexResult::Infeasible => panic!("should be feasible"),
        }
        // tightening the last bound to 10 makes it infeasible
        constraints.pop();
        constraints.push(le(LinExpr::var(vars[19]) - LinExpr::constant(10)));
        assert_eq!(check_feasibility(&constraints), SimplexResult::Infeasible);
    }

    #[test]
    fn atoms_sharing_a_form_share_a_tableau_variable() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let mut simplex = IncrementalSimplex::new();
        // four scalings/shifts of the same form x + y: one slack variable
        simplex.prepare(&le(LinExpr::var(x) + LinExpr::var(y) - LinExpr::constant(3)));
        simplex.prepare(&ge(
            LinExpr::scaled_var(x, 2) + LinExpr::scaled_var(y, 2) - LinExpr::constant(8)
        ));
        simplex.prepare(&le(LinExpr::zero() - LinExpr::var(x) - LinExpr::var(y)));
        simplex.prepare(&eq(LinExpr::var(x) + LinExpr::var(y)));
        // two problem columns + one slack
        assert_eq!(simplex.num_tableau_vars(), 3);
    }

    #[test]
    fn assert_retract_roundtrip_restores_feasibility() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let mut simplex = IncrementalSimplex::new();
        simplex
            .assert_constraint(
                &eq(LinExpr::var(x) + LinExpr::var(y) - LinExpr::constant(5)),
                0,
            )
            .unwrap();
        simplex
            .assert_constraint(&ge(LinExpr::var(x) - LinExpr::constant(2)), 1)
            .unwrap();
        assert!(simplex.check().is_ok());
        let base = simplex.num_asserted();
        // x + y = 5 ∧ x ≥ 2 ∧ y ≥ 4 is infeasible
        simplex
            .assert_constraint(&ge(LinExpr::var(y) - LinExpr::constant(4)), 2)
            .unwrap();
        let core = simplex.check().expect_err("infeasible");
        assert!(
            core.contains(&2),
            "core {core:?} must involve the new bound"
        );
        simplex.retract_to(base);
        assert!(simplex.check().is_ok(), "retraction restores feasibility");
        check_model(
            &[
                eq(LinExpr::var(x) + LinExpr::var(y) - LinExpr::constant(5)),
                ge(LinExpr::var(x) - LinExpr::constant(2)),
            ],
            &simplex.model(),
        );
    }

    #[test]
    fn immediate_bound_clash_returns_both_tags() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let mut simplex = IncrementalSimplex::new();
        simplex
            .assert_constraint(&ge(LinExpr::var(x) - LinExpr::constant(3)), 7)
            .unwrap();
        let err = simplex
            .assert_constraint(&le(LinExpr::var(x) - LinExpr::constant(2)), 9)
            .expect_err("clashing bounds");
        assert_eq!(err.len(), 2);
        assert!(err.contains(&7) && err.contains(&9));
        // the failed assertion left no trace
        assert_eq!(simplex.num_asserted(), 1);
        assert!(simplex.check().is_ok());
    }

    #[test]
    fn levels_nest_and_pop_in_order() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let mut simplex = IncrementalSimplex::new();
        simplex.assert_constraint(&ge(LinExpr::var(x)), 0).unwrap();
        simplex.push_level();
        simplex
            .assert_constraint(&le(LinExpr::var(x) - LinExpr::constant(5)), 1)
            .unwrap();
        simplex.push_level();
        assert!(simplex
            .assert_constraint(&ge(LinExpr::var(x) - LinExpr::constant(9)), 2)
            .is_err());
        simplex.pop_level();
        assert!(simplex.check().is_ok());
        assert!(simplex
            .assert_constraint(&ge(LinExpr::var(x) - LinExpr::constant(9)), 3)
            .is_err());
        simplex.pop_to_level(0);
        assert!(simplex
            .assert_constraint(&ge(LinExpr::var(x) - LinExpr::constant(9)), 4)
            .is_ok());
        assert!(simplex.check().is_ok());
        assert!(simplex.model()[&x] >= Rat::from_int(9));
    }

    #[test]
    fn session_simplex_matches_one_shot_checks() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let base = vec![
            ge(LinExpr::var(x)),
            ge(LinExpr::var(y)),
            le(LinExpr::var(x) + LinExpr::var(y) - LinExpr::constant(6)),
        ];
        let mut branch_a = base.clone();
        branch_a.push(ge(LinExpr::var(x) - LinExpr::constant(7)));
        let mut branch_b = base.clone();
        branch_b.push(ge(LinExpr::var(x) - LinExpr::constant(4)));
        let mut branch_b2 = branch_b.clone();
        branch_b2.push(ge(LinExpr::var(y) - LinExpr::constant(3)));
        let mut session = SessionSimplex::new();
        for slice in [&base, &branch_a, &branch_b, &branch_b2, &base] {
            assert_eq!(
                session.infeasible(slice),
                !check_feasibility(slice).is_feasible(),
                "session disagrees with one-shot on {slice:?}"
            );
        }
    }

    #[test]
    fn sparse_saves_row_touches_on_a_long_chain() {
        let mut pool = VarPool::new();
        let vars: Vec<Var> = (0..40).map(|i| pool.fresh(&format!("c{i}"))).collect();
        let mut simplex = IncrementalSimplex::new();
        let mut tag = 0u32;
        simplex
            .assert_constraint(&ge(LinExpr::var(vars[0]) - LinExpr::constant(1)), tag)
            .unwrap();
        for w in vars.windows(2) {
            tag += 1;
            simplex
                .assert_constraint(
                    &ge(LinExpr::var(w[1]) - LinExpr::var(w[0]) - LinExpr::constant(1)),
                    tag,
                )
                .unwrap();
        }
        assert!(simplex.check().is_ok());
        assert!(simplex.pivots() > 0);
        assert!(
            simplex.row_touches() < simplex.dense_row_touches(),
            "occurrence index must beat the dense scan on a chain: {} vs {}",
            simplex.row_touches(),
            simplex.dense_row_touches()
        );
    }

    #[test]
    fn implied_bounds_match_the_assignment() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let mut simplex = IncrementalSimplex::new();
        // 2 ≤ x ≤ 3, 1 ≤ y ≤ 4: the form x + y is implied into [3, 7]
        simplex
            .assert_constraint(&ge(LinExpr::var(x) - LinExpr::constant(2)), 0)
            .unwrap();
        simplex
            .assert_constraint(&le(LinExpr::var(x) - LinExpr::constant(3)), 1)
            .unwrap();
        simplex
            .assert_constraint(&ge(LinExpr::var(y) - LinExpr::constant(1)), 2)
            .unwrap();
        simplex
            .assert_constraint(&le(LinExpr::var(y) - LinExpr::constant(4)), 3)
            .unwrap();
        let p = simplex.prepare(&le(
            LinExpr::var(x) + LinExpr::var(y) - LinExpr::constant(100)
        ));
        let s = p.tableau_owner().expect("slack owner");
        assert!(simplex.is_slack(s));
        assert!(simplex.check().is_ok());
        let mut tags = Vec::new();
        let hi = simplex.implied_bound(s, true, 64, &mut tags);
        assert_eq!(hi, Some(Rat::from_int(7)));
        tags.sort_unstable();
        assert_eq!(tags, vec![1, 3]);
        tags.clear();
        let lo = simplex.implied_bound(s, false, 64, &mut tags);
        assert_eq!(lo, Some(Rat::from_int(3)));
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 2]);
        // β must sit inside the implied interval (the guided filter relies
        // on this necessary condition)
        assert!(simplex.beta_of(s) >= Rat::from_int(3));
        assert!(simplex.beta_of(s) <= Rat::from_int(7));
    }

    /// Structural invariants of the sparse layout: rows sorted with
    /// nonzero coefficients over nonbasic columns, the occurrence index
    /// exact (no stale or missing entries, no duplicates), and every basic
    /// value equal to its row evaluated at the nonbasics.
    fn check_invariants(s: &IncrementalSimplex) {
        for (b, row) in s.rows.iter().enumerate() {
            let Some(row) = row else { continue };
            assert!(
                row.cols.windows(2).all(|w| w[0] < w[1]),
                "row of {b} not strictly sorted"
            );
            let mut value = Rat::ZERO;
            for (k, a) in row.iter() {
                assert!(!a.is_zero(), "zero coefficient in row of {b}");
                assert!(s.rows[k].is_none(), "row of {b} mentions basic {k}");
                assert!(
                    s.col_rows[k].contains(&(b as u32)),
                    "occurrence index misses {b} in column {k}"
                );
                value += a * s.beta[k];
            }
            assert_eq!(value, s.beta[b], "β inconsistent at basic {b}");
        }
        for (k, occ) in s.col_rows.iter().enumerate() {
            let mut sorted = occ.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), occ.len(), "duplicate occurrence in col {k}");
            for &b in occ {
                let row = s.rows[b as usize]
                    .as_ref()
                    .unwrap_or_else(|| panic!("stale occurrence: {b} not basic (col {k})"));
                assert!(
                    row.get(k).is_some(),
                    "stale occurrence: row of {b} lacks col {k}"
                );
            }
        }
        // the suspect set over-approximates the violating basics, and its
        // dedup flags agree with the list
        for v in 0..s.beta.len() {
            if s.is_basic(v) && (s.violates_lower(v) || s.violates_upper(v)) {
                assert!(s.suspect_flag[v], "violating basic {v} not suspect");
            }
            assert_eq!(
                s.suspect_flag[v],
                s.suspect.contains(&(v as u32)),
                "suspect flag out of sync at {v}"
            );
        }
    }

    /// The retired dense `BTreeMap` tableau, kept verbatim as the
    /// differential oracle for the sparse rewrite.  Pivot selection is
    /// identical (Bland's rule over column-sorted rows), so a correct
    /// sparse tableau reproduces its pivot count, model, and cores
    /// *exactly* — not just its verdicts.
    mod dense {
        use super::super::{core_to_indices, Rel, SimplexConstraint};
        use crate::rational::{gcd, Rat};
        use crate::term::{LinExpr, Var};
        use std::collections::{BTreeMap, HashMap};

        struct UndoEntry {
            var: usize,
            upper: bool,
            old: Option<(Rat, u32)>,
        }

        pub struct DenseSimplex {
            var_cols: HashMap<Var, usize>,
            forms: HashMap<LinExpr, usize>,
            rows: Vec<Option<BTreeMap<usize, Rat>>>,
            lower: Vec<Option<(Rat, u32)>>,
            upper: Vec<Option<(Rat, u32)>>,
            beta: Vec<Rat>,
            undo: Vec<UndoEntry>,
            assert_marks: Vec<usize>,
            level_marks: Vec<usize>,
            pivots: u64,
        }

        impl DenseSimplex {
            pub fn new() -> DenseSimplex {
                DenseSimplex {
                    var_cols: HashMap::new(),
                    forms: HashMap::new(),
                    rows: Vec::new(),
                    lower: Vec::new(),
                    upper: Vec::new(),
                    beta: Vec::new(),
                    undo: Vec::new(),
                    assert_marks: Vec::new(),
                    level_marks: Vec::new(),
                    pivots: 0,
                }
            }

            pub fn num_asserted(&self) -> usize {
                self.assert_marks.len()
            }

            pub fn pivots(&self) -> u64 {
                self.pivots
            }

            fn add_var(&mut self) -> usize {
                let idx = self.beta.len();
                self.rows.push(None);
                self.lower.push(None);
                self.upper.push(None);
                self.beta.push(Rat::ZERO);
                idx
            }

            fn col_of(&mut self, v: Var) -> usize {
                if let Some(&c) = self.var_cols.get(&v) {
                    return c;
                }
                let c = self.add_var();
                self.var_cols.insert(v, c);
                c
            }

            fn slack_of(&mut self, form: &LinExpr) -> usize {
                if let Some(&s) = self.forms.get(form) {
                    return s;
                }
                let mut row: BTreeMap<usize, Rat> = BTreeMap::new();
                for (v, c) in form.terms() {
                    let col = self.col_of(v);
                    let coeff = Rat::from_int(c);
                    if let Some(def) = self.rows[col].clone() {
                        for (j, a) in def {
                            let entry = row.entry(j).or_insert(Rat::ZERO);
                            *entry += coeff * a;
                        }
                    } else {
                        let entry = row.entry(col).or_insert(Rat::ZERO);
                        *entry += coeff;
                    }
                }
                row.retain(|_, r| !r.is_zero());
                let mut value = Rat::ZERO;
                for (&j, &a) in &row {
                    value += a * self.beta[j];
                }
                let s = self.add_var();
                self.rows[s] = Some(row);
                self.beta[s] = value;
                self.forms.insert(form.clone(), s);
                s
            }

            pub fn assert_constraint(
                &mut self,
                constraint: &SimplexConstraint,
                tag: u32,
            ) -> Result<(), Vec<u32>> {
                let k = constraint.expr.constant_part();
                if constraint.expr.is_constant() {
                    let const_sat = match constraint.rel {
                        Rel::Le => k <= 0,
                        Rel::Ge => k >= 0,
                        Rel::Eq => k == 0,
                    };
                    if const_sat {
                        self.assert_marks.push(self.undo.len());
                        return Ok(());
                    }
                    return Err(vec![tag]);
                }
                let mut g: i128 = 0;
                let mut first_sign: i128 = 0;
                for (_, c) in constraint.expr.terms() {
                    g = gcd(g, c);
                    if first_sign == 0 {
                        first_sign = if c > 0 { 1 } else { -1 };
                    }
                }
                let scale = g * first_sign;
                let mut form = LinExpr::zero();
                for (v, c) in constraint.expr.terms() {
                    form.add_term(v, c / scale);
                }
                let bound = Rat::from_int(-k) / Rat::from_int(scale);
                let rel = match (constraint.rel, scale > 0) {
                    (rel, true) => rel,
                    (Rel::Le, false) => Rel::Ge,
                    (Rel::Ge, false) => Rel::Le,
                    (Rel::Eq, false) => Rel::Eq,
                };
                let x = if form.num_terms() == 1 {
                    let v = form.variables().next().expect("single term");
                    self.col_of(v)
                } else {
                    self.slack_of(&form)
                };
                let (lo, hi) = match rel {
                    Rel::Le => (None, Some(bound)),
                    Rel::Ge => (Some(bound), None),
                    Rel::Eq => (Some(bound), Some(bound)),
                };
                let mark = self.undo.len();
                if let Some(lo) = lo {
                    if let Some((hi, hi_tag)) = self.upper[x] {
                        if lo > hi {
                            return Err(vec![hi_tag, tag]);
                        }
                    }
                    if self.lower[x].is_none_or(|(cur, _)| lo > cur) {
                        self.undo.push(UndoEntry {
                            var: x,
                            upper: false,
                            old: self.lower[x],
                        });
                        self.lower[x] = Some((lo, tag));
                        if self.rows[x].is_none() && self.beta[x] < lo {
                            self.update(x, lo);
                        }
                    }
                }
                if let Some(hi) = hi {
                    if let Some((lo, lo_tag)) = self.lower[x] {
                        if hi < lo {
                            self.unwind_to(mark);
                            return Err(vec![lo_tag, tag]);
                        }
                    }
                    if self.upper[x].is_none_or(|(cur, _)| hi < cur) {
                        self.undo.push(UndoEntry {
                            var: x,
                            upper: true,
                            old: self.upper[x],
                        });
                        self.upper[x] = Some((hi, tag));
                        if self.rows[x].is_none() && self.beta[x] > hi {
                            self.update(x, hi);
                        }
                    }
                }
                self.assert_marks.push(mark);
                Ok(())
            }

            pub fn retract_to(&mut self, n: usize) {
                while self.assert_marks.len() > n {
                    let mark = self.assert_marks.pop().expect("non-empty");
                    self.unwind_to(mark);
                }
                while self
                    .level_marks
                    .last()
                    .is_some_and(|&m| m > self.assert_marks.len())
                {
                    self.level_marks.pop();
                }
            }

            fn unwind_to(&mut self, mark: usize) {
                while self.undo.len() > mark {
                    let entry = self.undo.pop().expect("non-empty");
                    if entry.upper {
                        self.upper[entry.var] = entry.old;
                    } else {
                        self.lower[entry.var] = entry.old;
                    }
                }
            }

            pub fn push_level(&mut self) {
                self.level_marks.push(self.assert_marks.len());
            }

            pub fn pop_level(&mut self) {
                if let Some(n) = self.level_marks.pop() {
                    self.retract_to(n);
                }
            }

            fn is_basic(&self, v: usize) -> bool {
                self.rows[v].is_some()
            }

            fn violates_lower(&self, v: usize) -> bool {
                matches!(self.lower[v], Some((l, _)) if self.beta[v] < l)
            }

            fn violates_upper(&self, v: usize) -> bool {
                matches!(self.upper[v], Some((u, _)) if self.beta[v] > u)
            }

            fn update(&mut self, n: usize, v: Rat) {
                let delta = v - self.beta[n];
                self.beta[n] = v;
                for other in 0..self.beta.len() {
                    if let Some(row) = &self.rows[other] {
                        if let Some(&a_on) = row.get(&n) {
                            self.beta[other] += a_on * delta;
                        }
                    }
                }
            }

            fn pivot_and_update(&mut self, b: usize, n: usize, v: Rat) {
                let row_b = self.rows[b].clone().expect("b must be basic");
                let a_bn = *row_b.get(&n).expect("n must occur in the row of b");
                let theta = (v - self.beta[b]) / a_bn;
                self.beta[b] = v;
                self.beta[n] += theta;
                for other in 0..self.beta.len() {
                    if other != b {
                        if let Some(row) = &self.rows[other] {
                            if let Some(&a_on) = row.get(&n) {
                                self.beta[other] += a_on * theta;
                            }
                        }
                    }
                }
                self.pivot(b, n, &row_b, a_bn);
                self.pivots += 1;
            }

            fn pivot(&mut self, b: usize, n: usize, row_b: &BTreeMap<usize, Rat>, a_bn: Rat) {
                let mut new_row_n: BTreeMap<usize, Rat> = BTreeMap::new();
                new_row_n.insert(b, Rat::ONE / a_bn);
                for (&k, &a_bk) in row_b {
                    if k != n {
                        new_row_n.insert(k, -a_bk / a_bn);
                    }
                }
                new_row_n.retain(|_, r| !r.is_zero());
                self.rows[b] = None;
                for other in 0..self.rows.len() {
                    if other == n {
                        continue;
                    }
                    let Some(row) = self.rows[other].clone() else {
                        continue;
                    };
                    if let Some(&a_on) = row.get(&n) {
                        let mut new_row = row.clone();
                        new_row.remove(&n);
                        for (&k, &c) in &new_row_n {
                            let entry = new_row.entry(k).or_insert(Rat::ZERO);
                            *entry += a_on * c;
                        }
                        new_row.retain(|_, r| !r.is_zero());
                        self.rows[other] = Some(new_row);
                    }
                }
                self.rows[n] = Some(new_row_n);
            }

            pub fn check(&mut self) -> Result<(), Vec<u32>> {
                loop {
                    let violating = (0..self.beta.len()).find(|&v| {
                        self.is_basic(v) && (self.violates_lower(v) || self.violates_upper(v))
                    });
                    let Some(b) = violating else {
                        return Ok(());
                    };
                    let row = self.rows[b].clone().expect("basic");
                    let lower_violation = self.violates_lower(b);
                    if lower_violation {
                        let target = self.lower[b].expect("violated lower bound exists").0;
                        let candidate = row.iter().find(|(&n, &a)| {
                            (a.is_positive() && self.upper[n].is_none_or(|(u, _)| self.beta[n] < u))
                                || (a.is_negative()
                                    && self.lower[n].is_none_or(|(l, _)| self.beta[n] > l))
                        });
                        match candidate {
                            None => return Err(self.conflict_core(b, &row, true)),
                            Some((&n, _)) => self.pivot_and_update(b, n, target),
                        }
                    } else {
                        let target = self.upper[b].expect("violated upper bound exists").0;
                        let candidate = row.iter().find(|(&n, &a)| {
                            (a.is_negative() && self.upper[n].is_none_or(|(u, _)| self.beta[n] < u))
                                || (a.is_positive()
                                    && self.lower[n].is_none_or(|(l, _)| self.beta[n] > l))
                        });
                        match candidate {
                            None => return Err(self.conflict_core(b, &row, false)),
                            Some((&n, _)) => self.pivot_and_update(b, n, target),
                        }
                    }
                }
            }

            fn conflict_core(
                &self,
                b: usize,
                row: &BTreeMap<usize, Rat>,
                lower_violation: bool,
            ) -> Vec<u32> {
                let mut core = Vec::with_capacity(row.len() + 1);
                let own = if lower_violation {
                    self.lower[b].expect("violated bound").1
                } else {
                    self.upper[b].expect("violated bound").1
                };
                core.push(own);
                for (&n, &a) in row {
                    let blocking_upper = lower_violation == a.is_positive();
                    let tag = if blocking_upper {
                        self.upper[n].expect("blocking bound").1
                    } else {
                        self.lower[n].expect("blocking bound").1
                    };
                    core.push(tag);
                }
                core.sort_unstable();
                core.dedup();
                core
            }

            pub fn model(&self) -> BTreeMap<Var, Rat> {
                let mut out = BTreeMap::new();
                for (&var, &col) in &self.var_cols {
                    out.insert(var, self.beta[col]);
                }
                out
            }

            pub fn check_with_core_indices(&mut self) -> Result<BTreeMap<Var, Rat>, Vec<usize>> {
                match self.check() {
                    Ok(()) => Ok(self.model()),
                    Err(core) => Err(core_to_indices(core)),
                }
            }
        }
    }

    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
        fn int(&mut self, lo: i128, hi: i128) -> i128 {
            lo + (self.next() % ((hi - lo + 1) as u64)) as i128
        }
    }

    fn random_constraint(rng: &mut Rng, vars: &[Var]) -> SimplexConstraint {
        let n_terms = 1 + rng.below(3) as usize;
        let mut expr = LinExpr::constant(rng.int(-10, 10));
        for _ in 0..n_terms {
            let v = vars[rng.below(vars.len() as u64) as usize];
            let mut c = rng.int(-3, 3);
            if c == 0 {
                c = 1;
            }
            expr.add_term(v, c);
        }
        let rel = match rng.below(3) {
            0 => Rel::Le,
            1 => Rel::Ge,
            _ => Rel::Eq,
        };
        SimplexConstraint { expr, rel }
    }

    /// The tentpole pin: random assert/push/pop/check sessions must leave
    /// the sparse tableau and the retired dense oracle in *identical*
    /// observable states — same assert verdicts and clash tags, same check
    /// verdicts, same pivot counts, same models, same Farkas cores — with
    /// every returned core certified infeasible by a one-shot re-check and
    /// the occurrence-index invariants intact after every operation.
    #[test]
    fn sparse_tableau_matches_dense_oracle_over_random_sessions() {
        let mut pool = VarPool::new();
        let vars: Vec<Var> = (0..6).map(|i| pool.fresh(&format!("v{i}"))).collect();
        for seed in 1..=10u64 {
            let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut sparse = IncrementalSimplex::new();
            let mut oracle = dense::DenseSimplex::new();
            let mut asserted: Vec<SimplexConstraint> = Vec::new();
            for _ in 0..80 {
                match rng.below(10) {
                    0..=4 => {
                        let c = random_constraint(&mut rng, &vars);
                        let tag = asserted.len() as u32;
                        let rs = sparse.assert_constraint(&c, tag);
                        let ro = oracle.assert_constraint(&c, tag);
                        assert_eq!(rs, ro, "assert disagreement on {c:?} (seed {seed})");
                        if rs.is_ok() {
                            asserted.push(c);
                        }
                    }
                    5 => {
                        sparse.push_level();
                        oracle.push_level();
                    }
                    6 => {
                        sparse.pop_level();
                        oracle.pop_level();
                        asserted.truncate(sparse.num_asserted());
                    }
                    _ => {
                        let rs = sparse.check();
                        let ro = oracle.check();
                        assert_eq!(rs, ro, "check disagreement (seed {seed})");
                        assert_eq!(
                            sparse.pivots(),
                            oracle.pivots(),
                            "pivot counts diverged (seed {seed})"
                        );
                        match rs {
                            Ok(()) => {
                                assert_eq!(
                                    sparse.model(),
                                    oracle.model(),
                                    "models diverged (seed {seed})"
                                );
                                check_model(&asserted, &sparse.model());
                            }
                            Err(core) => {
                                // certify: the core's constraints alone are
                                // jointly infeasible
                                let sub: Vec<SimplexConstraint> =
                                    core.iter().map(|&t| asserted[t as usize].clone()).collect();
                                assert!(
                                    !check_feasibility(&sub).is_feasible(),
                                    "core not infeasible (seed {seed}): {core:?}"
                                );
                                // an infeasible state stays infeasible; drop
                                // back to a clean prefix to keep the session
                                // going (mirrored on both sides)
                                let keep = asserted.len() / 2;
                                sparse.retract_to(keep);
                                oracle.retract_to(keep);
                                asserted.truncate(keep);
                            }
                        }
                    }
                }
                assert_eq!(sparse.num_asserted(), oracle.num_asserted());
                check_invariants(&sparse);
            }
        }
    }

    /// The dense oracle agrees with the one-shot public entry point — a
    /// sanity pin that the copied oracle is itself faithful.
    #[test]
    fn dense_oracle_matches_one_shot_entry_point() {
        let mut pool = VarPool::new();
        let vars: Vec<Var> = (0..5).map(|i| pool.fresh(&format!("w{i}"))).collect();
        let mut rng = Rng(0xdead_beef_cafe_f00d);
        for _ in 0..50 {
            let n = 2 + rng.below(6) as usize;
            let cs: Vec<SimplexConstraint> =
                (0..n).map(|_| random_constraint(&mut rng, &vars)).collect();
            let mut oracle = dense::DenseSimplex::new();
            let mut early = None;
            for (i, c) in cs.iter().enumerate() {
                if let Err(core) = oracle.assert_constraint(c, i as u32) {
                    early = Some(core_to_indices(core));
                    break;
                }
            }
            let oracle_result = match early {
                Some(core) => Err(core),
                None => oracle.check_with_core_indices(),
            };
            match (check_feasibility_with_core(&cs), oracle_result) {
                (Ok(m1), Ok(m2)) => assert_eq!(m1, m2),
                (Err(c1), Err(c2)) => assert_eq!(c1, c2),
                (a, b) => panic!("verdicts diverged: {a:?} vs {b:?}"),
            }
        }
    }
}
