//! Integer feasibility of conjunctions of linear constraints by
//! branch-and-bound on top of the rational simplex.
//!
//! Quantifier-free LIA satisfiability is NP-complete; the paper leans on this
//! (Theorem 7.3 cites Papadimitriou's small-model bound [65]).  This module
//! is the integer core: given a conjunction of `≤ / ≥ / =` constraints it
//! either finds an integer model, proves that none exists, or gives up with a
//! *resource-out* once a node or magnitude budget is exceeded — it never
//! returns a wrong answer.

use std::collections::BTreeMap;

use crate::rational::Rat;
use crate::simplex::{check_feasibility, Rel, SimplexConstraint, SimplexResult};
use crate::term::{LinExpr, Var};

/// Resource limits for the branch-and-bound search.
#[derive(Clone, Copy, Debug)]
pub struct IntFeasConfig {
    /// Maximum number of branch-and-bound nodes explored before giving up.
    pub max_nodes: usize,
    /// Absolute bound on branching values; branches that would push a
    /// variable beyond this magnitude are treated as resource-outs rather
    /// than explored (Papadimitriou's bound guarantees that solutions of the
    /// formulas we generate are far below it).
    pub magnitude_bound: i128,
}

impl Default for IntFeasConfig {
    fn default() -> IntFeasConfig {
        IntFeasConfig {
            max_nodes: 50_000,
            magnitude_bound: 10_000_000,
        }
    }
}

/// Outcome of an integer feasibility query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IntFeasResult {
    /// An integer model of the constraint conjunction.
    Sat(BTreeMap<Var, i128>),
    /// The conjunction has no integer solution.
    Unsat,
    /// The search exceeded its resource limits; satisfiability is unknown.
    ResourceOut,
}

impl IntFeasResult {
    /// Returns `true` for [`IntFeasResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, IntFeasResult::Sat(_))
    }
}

/// Decides integer feasibility of a conjunction of constraints.
pub fn solve_integer(constraints: &[SimplexConstraint], config: &IntFeasConfig) -> IntFeasResult {
    let mut nodes_left = config.max_nodes;
    let mut work: Vec<Vec<SimplexConstraint>> = vec![constraints.to_vec()];
    let mut saw_resource_out = false;

    while let Some(current) = work.pop() {
        if nodes_left == 0 {
            return IntFeasResult::ResourceOut;
        }
        nodes_left -= 1;

        match check_feasibility(&current) {
            SimplexResult::Infeasible => continue,
            SimplexResult::Feasible(model) => {
                match find_fractional(&model) {
                    None => {
                        let int_model = model
                            .into_iter()
                            .map(|(v, r)| (v, r.to_integer().expect("integral by construction")))
                            .collect();
                        return IntFeasResult::Sat(int_model);
                    }
                    Some((var, value)) => {
                        if value.abs() > Rat::from_int(config.magnitude_bound) {
                            saw_resource_out = true;
                            continue;
                        }
                        let floor = value.floor();
                        let ceil = value.ceil();
                        // x ≥ ceil branch (explored last-in-first-out first —
                        // counts in Parikh models are non-negative and usually small,
                        // so prefer the lower branch by pushing it last)
                        let mut upper_branch = current.clone();
                        upper_branch.push(SimplexConstraint {
                            expr: LinExpr::var(var) - LinExpr::constant(ceil),
                            rel: Rel::Ge,
                        });
                        work.push(upper_branch);
                        // x ≤ floor branch
                        let mut lower_branch = current;
                        lower_branch.push(SimplexConstraint {
                            expr: LinExpr::var(var) - LinExpr::constant(floor),
                            rel: Rel::Le,
                        });
                        work.push(lower_branch);
                    }
                }
            }
        }
    }

    if saw_resource_out {
        IntFeasResult::ResourceOut
    } else {
        IntFeasResult::Unsat
    }
}

fn find_fractional(model: &BTreeMap<Var, Rat>) -> Option<(Var, Rat)> {
    model
        .iter()
        .find(|(_, r)| !r.is_integer())
        .map(|(&v, &r)| (v, r))
}

/// Evaluates a conjunction of simplex constraints under an integer model
/// (missing variables count as 0); used by tests and by the model validator.
pub fn eval_constraints(constraints: &[SimplexConstraint], model: &BTreeMap<Var, i128>) -> bool {
    constraints.iter().all(|c| {
        let value = c.expr.eval(&|v| model.get(&v).copied().unwrap_or(0));
        match c.rel {
            Rel::Le => value <= 0,
            Rel::Ge => value >= 0,
            Rel::Eq => value == 0,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarPool;

    fn le(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Le }
    }
    fn ge(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Ge }
    }
    fn eq(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Eq }
    }

    #[test]
    fn integral_relaxation_is_accepted() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let constraints = vec![eq(LinExpr::var(x) - LinExpr::constant(4))];
        match solve_integer(&constraints, &IntFeasConfig::default()) {
            IntFeasResult::Sat(m) => assert_eq!(m[&x], 4),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn branching_is_needed_for_even_sum() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // 2x + 2y = 6, x >= 1, y >= 1 : integral solutions exist (x=1,y=2)
        let constraints = vec![
            eq(LinExpr::scaled_var(x, 2) + LinExpr::scaled_var(y, 2) - LinExpr::constant(6)),
            ge(LinExpr::var(x) - LinExpr::constant(1)),
            ge(LinExpr::var(y) - LinExpr::constant(1)),
        ];
        match solve_integer(&constraints, &IntFeasConfig::default()) {
            IntFeasResult::Sat(m) => {
                assert!(eval_constraints(&constraints, &m));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn no_integer_point_in_rational_polytope() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        // 1/3 <= x <= 2/3 expressed as 3x >= 1, 3x <= 2
        let constraints = vec![
            ge(LinExpr::scaled_var(x, 3) - LinExpr::constant(1)),
            le(LinExpr::scaled_var(x, 3) - LinExpr::constant(2)),
        ];
        assert_eq!(
            solve_integer(&constraints, &IntFeasConfig::default()),
            IntFeasResult::Unsat
        );
    }

    #[test]
    fn parity_conflict_bounded_is_unsat() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // 2x = 2y + 1 with 0 <= x,y <= 50: no integer solution
        let mut constraints = vec![eq(LinExpr::scaled_var(x, 2)
            - LinExpr::scaled_var(y, 2)
            - LinExpr::constant(1))];
        for v in [x, y] {
            constraints.push(ge(LinExpr::var(v)));
            constraints.push(le(LinExpr::var(v) - LinExpr::constant(50)));
        }
        assert_eq!(
            solve_integer(&constraints, &IntFeasConfig::default()),
            IntFeasResult::Unsat
        );
    }

    #[test]
    fn infeasible_rational_is_unsat_immediately() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let constraints = vec![
            ge(LinExpr::var(x) - LinExpr::constant(5)),
            le(LinExpr::var(x) - LinExpr::constant(4)),
        ];
        assert_eq!(
            solve_integer(&constraints, &IntFeasConfig::default()),
            IntFeasResult::Unsat
        );
    }

    #[test]
    fn node_limit_reports_resource_out() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let constraints = vec![eq(LinExpr::scaled_var(x, 2)
            - LinExpr::scaled_var(y, 2)
            - LinExpr::constant(1))];
        // unbounded parity conflict: without magnitude bound this would not terminate;
        // with a tiny node budget we must get a resource-out, not a wrong Unsat
        let config = IntFeasConfig {
            max_nodes: 5,
            magnitude_bound: 1_000_000,
        };
        assert_eq!(
            solve_integer(&constraints, &config),
            IntFeasResult::ResourceOut
        );
    }

    #[test]
    fn magnitude_bound_reports_resource_out_not_unsat() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // feasible only with huge values: x = y + 10^9, x <= 10^9+5, y >= 0
        let constraints = vec![
            eq(LinExpr::var(x) - LinExpr::var(y) - LinExpr::constant(1_000_000_000)),
            ge(LinExpr::var(y)),
        ];
        let config = IntFeasConfig {
            max_nodes: 1000,
            magnitude_bound: 100,
        };
        // the relaxation is already integral here, so this particular system is SAT;
        // perturb it so that branching is required at a huge value
        let result = solve_integer(&constraints, &config);
        assert!(result.is_sat() || result == IntFeasResult::ResourceOut);
    }

    #[test]
    fn larger_knapsack_style_instance() {
        let mut pool = VarPool::new();
        let vars: Vec<Var> = (0..6).map(|i| pool.fresh(&format!("n{i}"))).collect();
        // Σ (i+1)·n_i = 20, n_i >= 0 — has many integer solutions
        let mut sum = LinExpr::zero();
        for (i, &v) in vars.iter().enumerate() {
            sum += LinExpr::scaled_var(v, (i + 1) as i128);
        }
        let mut constraints = vec![eq(sum - LinExpr::constant(20))];
        for &v in &vars {
            constraints.push(ge(LinExpr::var(v)));
        }
        match solve_integer(&constraints, &IntFeasConfig::default()) {
            IntFeasResult::Sat(m) => assert!(eval_constraints(&constraints, &m)),
            other => panic!("expected sat, got {other:?}"),
        }
    }
}
