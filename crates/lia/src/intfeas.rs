//! Integer feasibility of conjunctions of linear constraints by
//! branch-and-bound on top of the rational simplex.
//!
//! Quantifier-free LIA satisfiability is NP-complete; the paper leans on this
//! (Theorem 7.3 cites Papadimitriou's small-model bound [65]).  This module
//! is the integer core: given a conjunction of `≤ / ≥ / =` constraints it
//! either finds an integer model, proves that none exists, or gives up with a
//! *resource-out* once a node or magnitude budget is exceeded — it never
//! returns a wrong answer.
//!
//! The whole search runs on **one persistent
//! [`IncrementalSimplex`](crate::simplex::IncrementalSimplex)**: the input
//! conjunction is registered and asserted once at the root, and every
//! branch constraint (`x ≤ ⌊β⌋` / `x ≥ ⌈β⌉` — a single-variable bound) is
//! an O(1) assertion under a backtracking level that is popped when the
//! DFS leaves the branch.  Each node's feasibility check warm-starts from
//! the parent's basis, so a node typically costs a couple of pivots
//! instead of a full tableau reconstruction.

use std::collections::BTreeMap;

use crate::cancel::CancelToken;
use crate::rational::Rat;
use crate::simplex::{IncrementalSimplex, Rel, SimplexConstraint};
use crate::term::{LinExpr, Var};

/// Pivots between cancellation polls inside one node's feasibility
/// check: a single warm-started check is usually a handful of pivots, but
/// on product tableaux with hundreds of rows it can run for seconds.
const CANCEL_SLICE: u64 = 4096;

/// Resource limits for the branch-and-bound search.
#[derive(Clone, Debug)]
pub struct IntFeasConfig {
    /// Cooperative cancellation: polled once per node and between pivot
    /// slices of each node's simplex check.  A fired token surfaces as
    /// [`IntFeasResult::ResourceOut`] — the caller distinguishes a real
    /// budget exhaustion from a cancellation by asking the token.  The
    /// default token never fires.
    pub cancel: CancelToken,
    /// Maximum number of branch-and-bound nodes explored before giving up.
    pub max_nodes: usize,
    /// Absolute bound on branching values; branches that would push a
    /// variable beyond this magnitude are treated as resource-outs rather
    /// than explored (Papadimitriou's bound guarantees that solutions of the
    /// formulas we generate are far below it).
    pub magnitude_bound: i128,
}

impl Default for IntFeasConfig {
    fn default() -> IntFeasConfig {
        IntFeasConfig {
            cancel: CancelToken::default(),
            max_nodes: 50_000,
            magnitude_bound: 10_000_000,
        }
    }
}

/// Outcome of an integer feasibility query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IntFeasResult {
    /// An integer model of the constraint conjunction.
    Sat(BTreeMap<Var, i128>),
    /// The conjunction has no integer solution.
    Unsat,
    /// The search exceeded its resource limits; satisfiability is unknown.
    ResourceOut,
}

impl IntFeasResult {
    /// Returns `true` for [`IntFeasResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, IntFeasResult::Sat(_))
    }
}

/// A branch-and-bound node: its branch constraint (`None` at the root),
/// its depth in the DFS (= the simplex level it runs under), the inherited
/// interval environment and the pinned-variable count at the last
/// divisibility check along its branch.
struct Node {
    branch: Option<SimplexConstraint>,
    depth: usize,
    inherited: Option<(crate::bounds::BoundEnv, usize)>,
}

/// Decides integer feasibility of a conjunction of constraints.
pub fn solve_integer(constraints: &[SimplexConstraint], config: &IntFeasConfig) -> IntFeasResult {
    solve_integer_with_pivots(constraints, config).0
}

/// [`solve_integer`] that also reports the number of simplex pivots the
/// branch-and-bound performed, so the engine's cumulative pivot counter
/// covers the integer leaves too.
pub fn solve_integer_with_pivots(
    constraints: &[SimplexConstraint],
    config: &IntFeasConfig,
) -> (IntFeasResult, u64) {
    use crate::bounds::{BoundEnv, BoundOutcome, ConstraintIndex};

    // one tableau for the whole search: base constraints asserted once,
    // branch bounds pushed/popped as the DFS moves
    let mut simplex = IncrementalSimplex::new();
    for c in constraints {
        if simplex.assert_constraint(c, 0).is_err() {
            // two base bounds clash outright: integer-infeasible a fortiori
            return (IntFeasResult::Unsat, simplex.pivots());
        }
    }
    // the DFS path's constraints (base + branch bounds), for the interval
    // and divisibility layers which reason over explicit conjunctions
    let mut path: Vec<SimplexConstraint> = constraints.to_vec();
    let base = constraints.len();

    let mut nodes_left = config.max_nodes;
    let mut work: Vec<Node> = vec![Node {
        branch: None,
        depth: 0,
        inherited: None,
    }];
    let mut saw_resource_out = false;

    while let Some(node) = work.pop() {
        if nodes_left == 0 {
            return (IntFeasResult::ResourceOut, simplex.pivots());
        }
        if config.cancel.can_fire() && config.cancel.is_cancelled() {
            return (IntFeasResult::ResourceOut, simplex.pivots());
        }
        nodes_left -= 1;
        // rewind to the node's parent, then enter the node's branch: a
        // level pop only relaxes bounds, so the warm basis stays valid
        simplex.pop_to_level(node.depth.saturating_sub(1));
        path.truncate(base + node.depth.saturating_sub(1));
        if let Some(branch) = node.branch {
            simplex.push_level();
            if simplex.assert_constraint(&branch, 0).is_err() {
                continue; // the branch bound clashes with an active bound
            }
            path.push(branch);
        }

        // cheap refutations before the simplex: interval propagation with
        // integer rounding (incremental: a child node re-propagates only
        // its one branch constraint into the parent's environment), then —
        // whenever propagation pinned a new variable — the divisibility
        // (GCD) test over the equality subsystem with the pinned variables
        // substituted out.  Without the latter, branch-and-bound diverges
        // on the parity conflicts of loopy Parikh encodings (`2s = 2t + 1`
        // admits ever-larger fractional relaxation points along the
        // unbounded counters).
        let (env, outcome, mut last_gcd_fixed) = match node.inherited {
            None => {
                let (env, outcome) = BoundEnv::from_constraints(&path);
                (env, outcome, usize::MAX) // MAX forces the root GCD check
            }
            Some((mut env, checked)) => {
                let index = ConstraintIndex::build(&path);
                let branch = std::slice::from_ref(path.last().expect("branch constraint"));
                let budget = 16 * path.len().max(8);
                let outcome = env.propagate(branch, &path, &index, budget);
                (env, outcome, checked)
            }
        };
        if outcome == BoundOutcome::Refuted {
            continue;
        }
        if last_gcd_fixed != env.pinned_count() {
            let fixed_map: crate::eqelim::FixedVars = env
                .fixed()
                .into_iter()
                .map(|(v, k)| (v, (k, Default::default())))
                .collect();
            if crate::eqelim::conflict_core_fixed(&path, &fixed_map).is_some() {
                continue;
            }
            last_gcd_fixed = env.pinned_count();
        }

        let check = loop {
            match simplex.check_budgeted(CANCEL_SLICE) {
                Some(result) => break result,
                None => {
                    if config.cancel.can_fire() && config.cancel.is_cancelled() {
                        return (IntFeasResult::ResourceOut, simplex.pivots());
                    }
                }
            }
        };
        match check {
            Err(_) => continue,
            Ok(()) => {
                let model = simplex.model();
                match find_fractional(&model, &env) {
                    None => {
                        let int_model = model
                            .into_iter()
                            .map(|(v, r)| (v, r.to_integer().expect("integral by construction")))
                            .collect();
                        return (IntFeasResult::Sat(int_model), simplex.pivots());
                    }
                    Some((var, value)) => {
                        if value.abs() > Rat::from_int(config.magnitude_bound) {
                            saw_resource_out = true;
                            continue;
                        }
                        let floor = value.floor();
                        let ceil = value.ceil();
                        // x ≥ ceil branch (explored last-in-first-out first —
                        // counts in Parikh models are non-negative and usually small,
                        // so prefer the lower branch by pushing it last)
                        work.push(Node {
                            branch: Some(SimplexConstraint {
                                expr: LinExpr::var(var) - LinExpr::constant(ceil),
                                rel: Rel::Ge,
                            }),
                            depth: node.depth + 1,
                            inherited: Some((env.clone(), last_gcd_fixed)),
                        });
                        // x ≤ floor branch
                        work.push(Node {
                            branch: Some(SimplexConstraint {
                                expr: LinExpr::var(var) - LinExpr::constant(floor),
                                rel: Rel::Le,
                            }),
                            depth: node.depth + 1,
                            inherited: Some((env, last_gcd_fixed)),
                        });
                    }
                }
            }
        }
    }

    let result = if saw_resource_out {
        IntFeasResult::ResourceOut
    } else {
        IntFeasResult::Unsat
    };
    (result, simplex.pivots())
}

/// Picks the fractional variable with the narrowest known interval:
/// branching on bounded variables (e.g. the 0/1 mismatch counters of the
/// tag encodings) terminates, branching on unbounded flow counters need
/// not.  Unbounded variables are only chosen when no bounded one is
/// fractional.
fn find_fractional(
    model: &BTreeMap<Var, Rat>,
    env: &crate::bounds::BoundEnv,
) -> Option<(Var, Rat)> {
    let mut best: Option<(Var, Rat, Option<Rat>)> = None;
    for (&v, &r) in model {
        if r.is_integer() {
            continue;
        }
        let width = match env.var_range(v) {
            (Some(lo), Some(hi)) => Some(hi - lo),
            _ => None,
        };
        let better = match (&best, &width) {
            (None, _) => true,
            (Some((_, _, None)), Some(_)) => true,
            (Some((_, _, Some(bw))), Some(w)) => w < bw,
            _ => false,
        };
        if better {
            best = Some((v, r, width));
        }
    }
    best.map(|(v, r, _)| (v, r))
}

/// Evaluates a conjunction of simplex constraints under an integer model
/// (missing variables count as 0); used by tests and by the model validator.
pub fn eval_constraints(constraints: &[SimplexConstraint], model: &BTreeMap<Var, i128>) -> bool {
    constraints.iter().all(|c| {
        let value = c.expr.eval(&|v| model.get(&v).copied().unwrap_or(0));
        match c.rel {
            Rel::Le => value <= 0,
            Rel::Ge => value >= 0,
            Rel::Eq => value == 0,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarPool;

    fn le(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Le }
    }
    fn ge(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Ge }
    }
    fn eq(expr: LinExpr) -> SimplexConstraint {
        SimplexConstraint { expr, rel: Rel::Eq }
    }

    #[test]
    fn integral_relaxation_is_accepted() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let constraints = vec![eq(LinExpr::var(x) - LinExpr::constant(4))];
        match solve_integer(&constraints, &IntFeasConfig::default()) {
            IntFeasResult::Sat(m) => assert_eq!(m[&x], 4),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn branching_is_needed_for_even_sum() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // 2x + 2y = 6, x >= 1, y >= 1 : integral solutions exist (x=1,y=2)
        let constraints = vec![
            eq(LinExpr::scaled_var(x, 2) + LinExpr::scaled_var(y, 2) - LinExpr::constant(6)),
            ge(LinExpr::var(x) - LinExpr::constant(1)),
            ge(LinExpr::var(y) - LinExpr::constant(1)),
        ];
        match solve_integer(&constraints, &IntFeasConfig::default()) {
            IntFeasResult::Sat(m) => {
                assert!(eval_constraints(&constraints, &m));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn no_integer_point_in_rational_polytope() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        // 1/3 <= x <= 2/3 expressed as 3x >= 1, 3x <= 2
        let constraints = vec![
            ge(LinExpr::scaled_var(x, 3) - LinExpr::constant(1)),
            le(LinExpr::scaled_var(x, 3) - LinExpr::constant(2)),
        ];
        assert_eq!(
            solve_integer(&constraints, &IntFeasConfig::default()),
            IntFeasResult::Unsat
        );
    }

    #[test]
    fn parity_conflict_bounded_is_unsat() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // 2x = 2y + 1 with 0 <= x,y <= 50: no integer solution
        let mut constraints = vec![eq(LinExpr::scaled_var(x, 2)
            - LinExpr::scaled_var(y, 2)
            - LinExpr::constant(1))];
        for v in [x, y] {
            constraints.push(ge(LinExpr::var(v)));
            constraints.push(le(LinExpr::var(v) - LinExpr::constant(50)));
        }
        assert_eq!(
            solve_integer(&constraints, &IntFeasConfig::default()),
            IntFeasResult::Unsat
        );
    }

    #[test]
    fn infeasible_rational_is_unsat_immediately() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let constraints = vec![
            ge(LinExpr::var(x) - LinExpr::constant(5)),
            le(LinExpr::var(x) - LinExpr::constant(4)),
        ];
        assert_eq!(
            solve_integer(&constraints, &IntFeasConfig::default()),
            IntFeasResult::Unsat
        );
    }

    #[test]
    fn unbounded_parity_conflict_is_refuted_by_gcd() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let constraints = vec![eq(LinExpr::scaled_var(x, 2)
            - LinExpr::scaled_var(y, 2)
            - LinExpr::constant(1))];
        // branch-and-bound alone diverges on this (ever-larger fractional
        // relaxation points along the unbounded counters) — the seed
        // reported ResourceOut here; the divisibility test settles it
        // instantly, so even a tiny budget yields the correct verdict
        let config = IntFeasConfig {
            max_nodes: 5,
            magnitude_bound: 1_000_000,
            ..IntFeasConfig::default()
        };
        assert_eq!(solve_integer(&constraints, &config), IntFeasResult::Unsat);
    }

    #[test]
    fn node_limit_reports_resource_out() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // a satisfiable system whose relaxation vertex is fractional, so at
        // least one branching is needed; a zero budget must give up rather
        // than answer
        let constraints = vec![
            eq(LinExpr::scaled_var(x, 2) - LinExpr::scaled_var(y, 3) - LinExpr::constant(1)),
            ge(LinExpr::var(x) - LinExpr::constant(1)),
        ];
        let config = IntFeasConfig {
            max_nodes: 0,
            magnitude_bound: 1_000_000,
            ..IntFeasConfig::default()
        };
        assert_eq!(
            solve_integer(&constraints, &config),
            IntFeasResult::ResourceOut
        );
    }

    #[test]
    fn magnitude_bound_reports_resource_out_not_unsat() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // feasible only with huge values: x = y + 10^9, x <= 10^9+5, y >= 0
        let constraints = vec![
            eq(LinExpr::var(x) - LinExpr::var(y) - LinExpr::constant(1_000_000_000)),
            ge(LinExpr::var(y)),
        ];
        let config = IntFeasConfig {
            max_nodes: 1000,
            magnitude_bound: 100,
            ..IntFeasConfig::default()
        };
        // the relaxation is already integral here, so this particular system is SAT;
        // perturb it so that branching is required at a huge value
        let result = solve_integer(&constraints, &config);
        assert!(result.is_sat() || result == IntFeasResult::ResourceOut);
    }

    #[test]
    fn larger_knapsack_style_instance() {
        let mut pool = VarPool::new();
        let vars: Vec<Var> = (0..6).map(|i| pool.fresh(&format!("n{i}"))).collect();
        // Σ (i+1)·n_i = 20, n_i >= 0 — has many integer solutions
        let mut sum = LinExpr::zero();
        for (i, &v) in vars.iter().enumerate() {
            sum += LinExpr::scaled_var(v, (i + 1) as i128);
        }
        let mut constraints = vec![eq(sum - LinExpr::constant(20))];
        for &v in &vars {
            constraints.push(ge(LinExpr::var(v)));
        }
        match solve_integer(&constraints, &IntFeasConfig::default()) {
            IntFeasResult::Sat(m) => assert!(eval_constraints(&constraints, &m)),
            other => panic!("expected sat, got {other:?}"),
        }
    }
}
