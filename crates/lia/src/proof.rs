//! DRAT/LRAT-style proof logging for the CDCL(T) engine.
//!
//! When [`crate::solver::SolverConfig::proof_logging`] is on, the engine
//! records every clause it ever reasons with into a [`ProofBuilder`]:
//!
//! * **atoms** — the meaning of every theory-backed Boolean variable
//!   (`b ⟺ e ≤ 0`), so a checker can reconstruct the linear constraint of
//!   either polarity of any literal;
//! * **root clauses** — the clausified input, the axioms of the proof;
//! * **theory lemmas** — clauses valid in LIA, each carrying the
//!   *certificate kind* a checker needs to re-derive it arithmetically:
//!   a Farkas coefficient vector ([`CertKind::Farkas`]), a bound-propagation
//!   chain ([`CertKind::Bounds`]), or a divisibility/GCD refutation
//!   ([`CertKind::Gcd`]);
//! * **derived clauses** — every learned clause, with *hints*: the ids of
//!   the antecedent clauses of its 1UIP resolution chain, ordered so a
//!   checker can replay the derivation by reverse unit propagation (RUP)
//!   without search;
//! * **queries/assumptions/finals** — the session structure: each
//!   [`crate::cdcl::Engine::solve`] call opens a `query` section listing its
//!   assumptions, and an Unsat answer ends with a `final` step naming the
//!   clause that refutes the assumption set (the empty clause when the
//!   database itself is unsatisfiable).
//!
//! The serialized format (see [`ProofBuilder::serialize`]) is a plain text,
//! line-oriented document that `posr-check` — an independent replayer that
//! shares *no* solver code — parses and verifies step by step.  Paths the
//! engine cannot certify (explanation fall-backs that the bounded
//! re-derivation missed, resource-out blocking clauses) mark the proof
//! *incomplete* instead of logging an unsound step; an incomplete document
//! is rejected by the checker, never silently accepted.

use crate::cnf::Lit;
use crate::rational::Rat;
use crate::term::{LinExpr, Var};

/// The arithmetic certificate attached to a theory lemma.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertKind {
    /// A non-negative rational combination of the constraints refuted by
    /// the lemma (one coefficient per literal, parallel to the clause)
    /// whose variable coefficients cancel and whose constant is positive.
    Farkas(Vec<Rat>),
    /// The refutation is re-derivable by integer-rounding interval
    /// propagation over the negated literals' constraints.
    Bounds,
    /// The refutation is re-derivable by the divisibility argument:
    /// propagate intervals, pin single-valued variables, recover equations
    /// from complementary half-spaces, eliminate unit-coefficient
    /// variables, and find an equation whose coefficient GCD does not
    /// divide its constant.
    Gcd,
}

/// One step of a proof document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// Boolean variable `var` means `expr ≤ 0`.
    Atom { var: usize, expr: LinExpr },
    /// An input (root) clause — an axiom of the proof.
    Root { id: u64, lits: Vec<Lit> },
    /// A clause derivable from earlier clauses by reverse unit propagation
    /// over `hints`, in order (the conflicting clause last).
    Derived {
        id: u64,
        lits: Vec<Lit>,
        hints: Vec<u64>,
    },
    /// A theory-valid clause with its arithmetic certificate.
    Lemma {
        id: u64,
        kind: CertKind,
        lits: Vec<Lit>,
    },
    /// The clause is no longer used by any later step.
    Delete { id: u64 },
    /// A new solve call begins; resets the assumption set.
    Query,
    /// An assumption literal of the current query.
    Assume { lit: Lit },
    /// The Unsat answer of the current query: clause `id` is falsified by
    /// the root assignment together with the negated assumptions (id 0
    /// names the top-level conflict of root propagation itself).
    Final { id: u64 },
}

/// An append-only proof log with stable clause ids.
#[derive(Debug, Default)]
pub struct ProofBuilder {
    steps: Vec<ProofStep>,
    next_id: u64,
    /// Set when the engine took a step it cannot certify; the serialized
    /// document carries the reason and the checker rejects it.
    incomplete: Option<String>,
}

impl ProofBuilder {
    /// An empty log.
    pub fn new() -> ProofBuilder {
        ProofBuilder {
            steps: Vec::new(),
            next_id: 0,
            incomplete: None,
        }
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Records the meaning of a theory-backed Boolean variable.
    pub fn atom(&mut self, var: usize, expr: &LinExpr) {
        self.steps.push(ProofStep::Atom {
            var,
            expr: expr.clone(),
        });
    }

    /// Records an input clause; returns its id.
    pub fn root(&mut self, lits: Vec<Lit>) -> u64 {
        let id = self.fresh_id();
        self.steps.push(ProofStep::Root { id, lits });
        id
    }

    /// Records a derived clause with its RUP hint chain; returns its id.
    pub fn derived(&mut self, lits: Vec<Lit>, hints: Vec<u64>) -> u64 {
        let id = self.fresh_id();
        self.steps.push(ProofStep::Derived { id, lits, hints });
        id
    }

    /// Records a theory lemma; returns its id.
    pub fn lemma(&mut self, lits: Vec<Lit>, kind: CertKind) -> u64 {
        let id = self.fresh_id();
        self.steps.push(ProofStep::Lemma { id, kind, lits });
        id
    }

    /// Records a clause deletion.
    pub fn delete(&mut self, id: u64) {
        if id != 0 {
            self.steps.push(ProofStep::Delete { id });
        }
    }

    /// Opens a new query section.
    pub fn query(&mut self) {
        self.steps.push(ProofStep::Query);
    }

    /// Records an assumption of the current query.
    pub fn assume(&mut self, lit: Lit) {
        self.steps.push(ProofStep::Assume { lit });
    }

    /// Records the Unsat answer of the current query.
    pub fn finish(&mut self, id: u64) {
        self.steps.push(ProofStep::Final { id });
    }

    /// Marks the proof incomplete (first reason wins).
    pub fn mark_incomplete(&mut self, reason: &str) {
        if self.incomplete.is_none() {
            self.incomplete = Some(reason.to_string());
        }
    }

    /// `true` while no uncertifiable step was taken.
    pub fn is_complete(&self) -> bool {
        self.incomplete.is_none()
    }

    /// The recorded steps.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Serializes the log into the `posr-proof` text format replayed by
    /// `posr-check`.  Literals print as `±(var+1)`, atoms as
    /// `var constant v:coeff…`, Farkas coefficients as `num/den`.
    pub fn serialize(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("p posr-proof 1\n");
        for step in &self.steps {
            match step {
                ProofStep::Atom { var, expr } => {
                    let _ = write!(out, "atom {var} {}", expr.constant_part());
                    for (v, c) in expr.terms() {
                        let _ = write!(out, " {}:{}", v.index(), c);
                    }
                    out.push('\n');
                }
                ProofStep::Root { id, lits } => {
                    let _ = write!(out, "root {id}");
                    push_lits(&mut out, lits);
                    out.push('\n');
                }
                ProofStep::Derived { id, lits, hints } => {
                    let _ = write!(out, "derive {id}");
                    push_lits(&mut out, lits);
                    for h in hints {
                        let _ = write!(out, " {h}");
                    }
                    out.push_str(" 0\n");
                }
                ProofStep::Lemma { id, kind, lits } => {
                    let name = match kind {
                        CertKind::Farkas(_) => "farkas",
                        CertKind::Bounds => "bounds",
                        CertKind::Gcd => "gcd",
                    };
                    let _ = write!(out, "lemma {id} {name}");
                    push_lits(&mut out, lits);
                    if let CertKind::Farkas(coeffs) = kind {
                        for c in coeffs {
                            let _ = write!(out, " {}/{}", c.numer(), c.denom());
                        }
                    }
                    out.push('\n');
                }
                ProofStep::Delete { id } => {
                    let _ = write!(out, "delete {id}");
                    out.push('\n');
                }
                ProofStep::Query => out.push_str("query\n"),
                ProofStep::Assume { lit } => {
                    let _ = write!(out, "assume {}", lit_code(*lit));
                    out.push('\n');
                }
                ProofStep::Final { id } => {
                    let _ = write!(out, "final {id}");
                    out.push('\n');
                }
            }
        }
        if let Some(reason) = &self.incomplete {
            let _ = writeln!(out, "incomplete {}", reason.replace('\n', " "));
        }
        out
    }
}

/// The signed integer encoding of a literal: `±(var+1)`.
fn lit_code(lit: Lit) -> i64 {
    let v = lit.var() as i64 + 1;
    if lit.is_positive() {
        v
    } else {
        -v
    }
}

fn push_lits(out: &mut String, lits: &[Lit]) {
    use std::fmt::Write;
    for &l in lits {
        let _ = write!(out, " {}", lit_code(l));
    }
    out.push_str(" 0");
}

/// Computes a Farkas certificate for an *irreducible* rationally infeasible
/// system of `≤ 0` rows: non-negative rationals `λ` with
/// `Σ λᵢ·rowᵢ = k > 0` (all variable coefficients cancel).  For a minimal
/// infeasible system the multipliers are unique up to scale — the kernel of
/// the variable-coefficient matrix is one-dimensional — so Gaussian
/// elimination recovers them directly.  Returns `None` when the system is
/// not irreducible (kernel dimension ≠ 1) or the candidate fails the sign
/// checks; the caller then falls back to a replayable certificate kind.
pub fn farkas_coefficients(rows: &[LinExpr]) -> Option<Vec<Rat>> {
    let m = rows.len();
    if m == 0 {
        return None;
    }
    let mut vars: Vec<Var> = Vec::new();
    for row in rows {
        for (v, _) in row.terms() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    // matrix rows = variables, columns = constraints: we solve M·λ = 0
    let mut mat: Vec<Vec<Rat>> = vars
        .iter()
        .map(|&v| rows.iter().map(|r| Rat::from_int(r.coeff(v))).collect())
        .collect();
    // reduced row echelon form
    let mut pivots: Vec<(usize, usize)> = Vec::new(); // (matrix row, column)
    let mut row = 0usize;
    for col in 0..m {
        let Some(p) = (row..mat.len()).find(|&r| !mat[r][col].is_zero()) else {
            continue;
        };
        mat.swap(row, p);
        let inv = mat[row][col].recip();
        for x in &mut mat[row] {
            *x = *x * inv;
        }
        let pivot_row = mat[row].clone();
        for (r, mat_row) in mat.iter_mut().enumerate() {
            if r != row && !mat_row[col].is_zero() {
                let f = mat_row[col];
                for (x, &p) in mat_row.iter_mut().zip(&pivot_row) {
                    *x -= p * f;
                }
            }
        }
        pivots.push((row, col));
        row += 1;
        if row == mat.len() {
            break;
        }
    }
    let pivot_cols: Vec<usize> = pivots.iter().map(|&(_, c)| c).collect();
    let free: Vec<usize> = (0..m).filter(|c| !pivot_cols.contains(c)).collect();
    if free.len() != 1 {
        return None;
    }
    let f = free[0];
    let mut lambda = vec![Rat::ZERO; m];
    lambda[f] = Rat::ONE;
    for &(r, c) in &pivots {
        lambda[c] = -mat[r][f];
    }
    // orient so the combined constant is positive, then check signs
    let mut konst = Rat::ZERO;
    for (i, row) in rows.iter().enumerate() {
        konst += lambda[i] * Rat::from_int(row.constant_part());
    }
    if konst.is_zero() {
        return None;
    }
    if konst.is_negative() {
        for l in &mut lambda {
            *l = -*l;
        }
    }
    if lambda.iter().any(|l| l.is_negative()) {
        return None;
    }
    Some(lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarPool;

    #[test]
    fn farkas_of_opposed_halfspaces() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // x + y − 0 ≤ 0 and 1 − x − y ≤ 0: λ = (1, 1), constant 1
        let rows = vec![
            LinExpr::var(x) + LinExpr::var(y),
            LinExpr::constant(1) - LinExpr::var(x) - LinExpr::var(y),
        ];
        let lambda = farkas_coefficients(&rows).expect("irreducible");
        assert_eq!(lambda, vec![Rat::ONE, Rat::ONE]);
    }

    #[test]
    fn farkas_with_scaling() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        // 2x − 1 ≤ 0 (x ≤ 1/2) and 1 − x ≤ 0 (x ≥ 1): λ = (1, 2) up to scale
        let rows = vec![
            LinExpr::scaled_var(x, 2) - LinExpr::constant(1),
            LinExpr::constant(1) - LinExpr::var(x),
        ];
        let lambda = farkas_coefficients(&rows).expect("irreducible");
        // the combination must cancel x and leave a positive constant
        let combo = lambda[0] * Rat::from_int(2) + lambda[1] * Rat::from_int(-1);
        assert!(combo.is_zero());
        let konst = lambda[0] * Rat::from_int(-1) + lambda[1] * Rat::from_int(1);
        assert!(konst.is_positive());
    }

    #[test]
    fn feasible_rows_have_no_certificate() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let rows = vec![LinExpr::var(x), LinExpr::var(y)];
        assert_eq!(farkas_coefficients(&rows), None);
    }

    #[test]
    fn serialization_round_trips_syntactically() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let mut builder = ProofBuilder::new();
        builder.atom(0, &(LinExpr::var(x) - LinExpr::constant(3)));
        let r = builder.root(vec![Lit::positive(0)]);
        builder.query();
        builder.assume(Lit::negative(0));
        let d = builder.derived(vec![], vec![r]);
        builder.finish(d);
        let text = builder.serialize();
        assert!(text.starts_with("p posr-proof 1\n"));
        assert!(text.contains("atom 0 -3 0:1"));
        assert!(text.contains("root 1 1 0"));
        assert!(text.contains("derive 2 0 1 0"));
        assert!(text.contains("assume -1"));
        assert!(text.contains("final 2"));
        assert!(builder.is_complete());
    }
}
