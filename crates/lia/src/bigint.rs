//! A minimal vendored arbitrary-precision signed integer — just enough
//! arithmetic for the rational slow lane, with zero dependencies.
//!
//! [`crate::rational::Rat`] stays a `Copy` pair of `i128`s (the simplex
//! hot paths depend on that), but its operators overflow on deep
//! product-automaton coefficients: a cross-multiplied numerator can need
//! ~254 bits even when the *reduced* result fits comfortably in `i128`.
//! The slow lane computes those intermediates here exactly, reduces by
//! the gcd, and converts back — only a result that genuinely cannot be
//! represented still raises the overflow marker.
//!
//! The representation is sign + little-endian `u64` limbs (no trailing
//! zero limbs; zero is the empty limb vector with a positive sign).
//! Division is simple binary long division — the slow lane runs on a few
//! hundred bits at most, where shift-and-subtract is plenty fast and has
//! no subtle quotient-estimation cases to get wrong.

use std::cmp::Ordering;

/// An arbitrary-precision signed integer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BigInt {
    /// Sign; never `true` for zero.
    neg: bool,
    /// Magnitude, little-endian base-2^64, no trailing zeros.
    mag: Vec<u64>,
}

fn trim(mag: &mut Vec<u64>) {
    while mag.last() == Some(&0) {
        mag.pop();
    }
}

fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        if x != y {
            return x.cmp(y);
        }
    }
    Ordering::Equal
}

fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &limb) in long.iter().enumerate() {
        let s = u128::from(limb) + u128::from(*short.get(i).unwrap_or(&0)) + u128::from(carry);
        out.push(s as u64);
        carry = (s >> 64) as u64;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `a - b`; requires `a >= b`.
fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(mag_cmp(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i128;
    for (i, &limb) in a.iter().enumerate() {
        let d = i128::from(limb) - i128::from(*b.get(i).unwrap_or(&0)) - borrow;
        if d < 0 {
            out.push((d + (1i128 << 64)) as u64);
            borrow = 1;
        } else {
            out.push(d as u64);
            borrow = 0;
        }
    }
    trim(&mut out);
    out
}

fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &y) in b.iter().enumerate() {
            let t = u128::from(x) * u128::from(y) + u128::from(out[i + j]) + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = u128::from(out[k]) + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    trim(&mut out);
    out
}

fn mag_bits(a: &[u64]) -> usize {
    match a.last() {
        None => 0,
        Some(&top) => (a.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
    }
}

fn mag_bit(a: &[u64], i: usize) -> bool {
    a.get(i / 64).is_some_and(|w| w >> (i % 64) & 1 == 1)
}

fn mag_set_bit(a: &mut Vec<u64>, i: usize) {
    while a.len() <= i / 64 {
        a.push(0);
    }
    a[i / 64] |= 1 << (i % 64);
}

/// Shift left by one bit, then set bit 0 to `low`.
fn mag_shl1_or(a: &mut Vec<u64>, low: bool) {
    let mut carry = u64::from(low);
    for w in a.iter_mut() {
        let next = *w >> 63;
        *w = (*w << 1) | carry;
        carry = next;
    }
    if carry != 0 {
        a.push(carry);
    }
}

/// Binary long division of magnitudes: `(a / b, a % b)`; `b` nonzero.
fn mag_divrem(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    debug_assert!(!b.is_empty());
    if mag_cmp(a, b) == Ordering::Less {
        return (Vec::new(), a.to_vec());
    }
    let mut quot: Vec<u64> = Vec::new();
    let mut rem: Vec<u64> = Vec::new();
    for i in (0..mag_bits(a)).rev() {
        mag_shl1_or(&mut rem, mag_bit(a, i));
        if mag_cmp(&rem, b) != Ordering::Less {
            rem = mag_sub(&rem, b);
            mag_set_bit(&mut quot, i);
        }
    }
    trim(&mut quot);
    trim(&mut rem);
    (quot, rem)
}

impl BigInt {
    /// Zero.
    pub fn zero() -> BigInt {
        BigInt {
            neg: false,
            mag: Vec::new(),
        }
    }

    /// Conversion from the machine type the solver actually uses.
    pub fn from_i128(v: i128) -> BigInt {
        let neg = v < 0;
        let m = v.unsigned_abs();
        let mut mag = vec![m as u64, (m >> 64) as u64];
        trim(&mut mag);
        BigInt { neg, mag }
    }

    /// `true` for zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    /// The magnitude (absolute value).
    pub fn abs(&self) -> BigInt {
        BigInt {
            neg: false,
            mag: self.mag.clone(),
        }
    }

    /// Negation.
    pub fn neg(&self) -> BigInt {
        BigInt {
            neg: !self.neg && !self.is_zero(),
            mag: self.mag.clone(),
        }
    }

    /// Exact sum.
    pub fn add(&self, other: &BigInt) -> BigInt {
        if self.neg == other.neg {
            BigInt {
                neg: self.neg,
                mag: mag_add(&self.mag, &other.mag),
            }
        } else {
            match mag_cmp(&self.mag, &other.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt {
                    neg: self.neg,
                    mag: mag_sub(&self.mag, &other.mag),
                },
                Ordering::Less => BigInt {
                    neg: other.neg,
                    mag: mag_sub(&other.mag, &self.mag),
                },
            }
        }
    }

    /// Exact difference.
    pub fn sub(&self, other: &BigInt) -> BigInt {
        self.add(&other.neg())
    }

    /// Exact product.
    pub fn mul(&self, other: &BigInt) -> BigInt {
        let mag = mag_mul(&self.mag, &other.mag);
        BigInt {
            neg: self.neg != other.neg && !mag.is_empty(),
            mag,
        }
    }

    /// Truncating division `(self / other, self % other)` (remainder takes
    /// the dividend's sign, like Rust's `%`).  `other` must be nonzero.
    pub fn divrem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "BigInt division by zero");
        let (q, r) = mag_divrem(&self.mag, &other.mag);
        (
            BigInt {
                neg: self.neg != other.neg && !q.is_empty(),
                mag: q,
            },
            BigInt {
                neg: self.neg && !r.is_empty(),
                mag: r,
            },
        )
    }

    /// Greatest common divisor of the magnitudes (always non-negative;
    /// `gcd(0, b) = |b|`).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let (_, r) = a.divrem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Total order.
    pub fn cmp_big(&self, other: &BigInt) -> Ordering {
        match (self.neg, other.neg) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => mag_cmp(&self.mag, &other.mag),
            (true, true) => mag_cmp(&other.mag, &self.mag),
        }
    }

    /// Back to the machine type; `None` when the value needs more than an
    /// `i128`.
    pub fn to_i128(&self) -> Option<i128> {
        if self.mag.len() > 2 {
            return None;
        }
        let lo = u128::from(*self.mag.first().unwrap_or(&0));
        let hi = u128::from(*self.mag.get(1).unwrap_or(&0));
        let m = (hi << 64) | lo;
        if self.neg {
            if m > i128::MAX.unsigned_abs() + 1 {
                None
            } else {
                Some(m.wrapping_neg() as i128)
            }
        } else if m > i128::MAX as u128 {
            None
        } else {
            Some(m as i128)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: i128) -> BigInt {
        BigInt::from_i128(v)
    }

    #[test]
    fn roundtrips_i128_extremes() {
        for v in [
            0,
            1,
            -1,
            42,
            -42,
            i128::MAX,
            i128::MIN,
            i64::MAX as i128 + 1,
        ] {
            assert_eq!(big(v).to_i128(), Some(v), "roundtrip {v}");
        }
    }

    #[test]
    fn add_sub_match_machine_arithmetic() {
        let cases = [
            (5i128, 7i128),
            (-5, 7),
            (5, -7),
            (-5, -7),
            (i64::MAX as i128, i64::MAX as i128),
            (i128::MAX / 2, i128::MAX / 2),
        ];
        for (a, b) in cases {
            assert_eq!(big(a).add(&big(b)).to_i128(), Some(a + b));
            assert_eq!(big(a).sub(&big(b)).to_i128(), Some(a - b));
        }
    }

    #[test]
    fn products_past_i128_come_back_after_division() {
        // (2^100)^2 does not fit an i128 …
        let k = big(1i128 << 100);
        let sq = k.mul(&k);
        assert_eq!(sq.to_i128(), None);
        // … but dividing it back down does
        let (q, r) = sq.divrem(&k);
        assert!(r.is_zero());
        assert_eq!(q.to_i128(), Some(1i128 << 100));
    }

    #[test]
    fn divrem_matches_machine_semantics() {
        for (a, b) in [(17i128, 5i128), (-17, 5), (17, -5), (-17, -5), (4, 9)] {
            let (q, r) = big(a).divrem(&big(b));
            assert_eq!(q.to_i128(), Some(a / b), "{a}/{b}");
            assert_eq!(r.to_i128(), Some(a % b), "{a}%{b}");
        }
    }

    #[test]
    fn gcd_reduces_shared_factors() {
        let a = big(1i128 << 90).mul(&big(6));
        let b = big(1i128 << 90).mul(&big(4));
        let g = a.gcd(&b);
        assert_eq!(g.to_i128(), Some((1i128 << 90) * 2));
        assert_eq!(big(0).gcd(&big(-8)).to_i128(), Some(8));
    }

    #[test]
    fn ordering_is_total_across_signs() {
        let mut vals: Vec<BigInt> = [-300i128, -2, 0, 1, 5, i128::MAX]
            .into_iter()
            .map(big)
            .collect();
        vals.push(big(i128::MAX).mul(&big(3)));
        for i in 0..vals.len() {
            for j in 0..vals.len() {
                assert_eq!(vals[i].cmp_big(&vals[j]), i.cmp(&j));
            }
        }
    }
}
