//! A DPLL(T)-style satisfiability solver for quantifier-free LIA formulas.
//!
//! The search walks the Boolean structure of the (negation-normal-form)
//! formula, accumulating a conjunction of asserted linear constraints.  At
//! every disjunction it branches; before branching and at every leaf it asks
//! the theory solver ([`crate::simplex`] for the rational relaxation,
//! [`crate::intfeas`] for integer feasibility) whether the current
//! conjunction is still consistent.  This "structural DPLL(T)" is well suited
//! to the formulas produced by the paper's reductions, whose disjunctions are
//! few and shallow (the `φ_len ∨ (φ_sym ∧ φ_mis)` split, the per-pair
//! disjunction of `φ_mis`, and the spanning-tree disjunctions of the Parikh
//! formula).
//!
//! The solver is sound for both answers: `Sat` comes with a model that the
//! caller can (and the tests do) re-evaluate, and `Unsat` is only reported
//! when every branch was refuted by the theory without hitting a resource
//! limit.  Resource exhaustion and arithmetic overflow yield
//! [`SolverResult::Unknown`].

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::formula::{Atom, Cmp, Formula};
use crate::intfeas::{solve_integer, IntFeasConfig, IntFeasResult};
use crate::rational::OVERFLOW_MSG;
use crate::simplex::{check_feasibility, Rel, SimplexConstraint};
use crate::term::{LinExpr, Var};

/// An integer model: a total assignment of the formula's variables
/// (variables the solver never had to constrain default to 0).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Model {
    values: BTreeMap<Var, i128>,
}

impl Model {
    /// Creates a model from explicit values.
    pub fn from_values(values: BTreeMap<Var, i128>) -> Model {
        Model { values }
    }

    /// The value of a variable (0 if unconstrained).
    pub fn value(&self, var: Var) -> i128 {
        self.values.get(&var).copied().unwrap_or(0)
    }

    /// Sets the value of a variable.
    pub fn set(&mut self, var: Var, value: i128) {
        self.values.insert(var, value);
    }

    /// Iterates over the explicitly assigned variables.
    pub fn iter(&self) -> impl Iterator<Item = (Var, i128)> + '_ {
        self.values.iter().map(|(&v, &k)| (v, k))
    }

    /// Evaluates a quantifier-free formula under this model.
    pub fn satisfies(&self, formula: &Formula) -> bool {
        formula.eval(&|v| self.value(v))
    }
}

/// Result of a satisfiability query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolverResult {
    /// The formula is satisfiable; a model is attached.
    Sat(Model),
    /// The formula is unsatisfiable.
    Unsat,
    /// The solver could not decide within its resource limits (or the input
    /// was outside the supported fragment); the string describes why.
    Unknown(String),
}

impl SolverResult {
    /// Returns `true` for [`SolverResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SolverResult::Sat(_))
    }

    /// Returns `true` for [`SolverResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolverResult::Unsat)
    }

    /// Extracts the model of a `Sat` result.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SolverResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Tuning knobs of the solver.
#[derive(Clone, Copy, Debug)]
pub struct SolverConfig {
    /// Prune disjunction branches whose asserted prefix is already
    /// rationally infeasible.  The ablation benchmark `encoding_size` flips
    /// this switch.
    pub early_pruning: bool,
    /// Maximum number of disjunction branches explored.
    pub max_decisions: usize,
    /// Limits of the integer feasibility backend.
    pub int_config: IntFeasConfig,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            early_pruning: true,
            // Every decision costs a rational-simplex feasibility check, so
            // this bound also acts as the de-facto time budget of a single
            // LIA query.  Queries that exceed it return `Unknown` rather than
            // running for minutes; the benchmark harness counts those as
            // resource-outs, exactly like the paper's OOR column.
            max_decisions: 1_500,
            int_config: IntFeasConfig::default(),
        }
    }
}

/// The DPLL(T) solver.
#[derive(Clone, Debug, Default)]
pub struct Solver {
    config: SolverConfig,
}

impl Solver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Solver {
        Solver { config: SolverConfig::default() }
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        Solver { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Decides satisfiability of a quantifier-free LIA formula.
    ///
    /// Quantified formulas yield `Unknown` (the `¬contains` front end in
    /// `posr-core` performs its own instantiation before calling this).
    /// Arithmetic overflow inside the theory solver is caught and reported
    /// as `Unknown` rather than producing a wrong answer.
    pub fn solve(&self, formula: &Formula) -> SolverResult {
        if !formula.is_quantifier_free() {
            return SolverResult::Unknown("formula contains quantifiers".to_string());
        }
        let nnf = formula.nnf().simplify();
        let result = catch_unwind(AssertUnwindSafe(|| self.solve_nnf(&nnf)));
        match result {
            Ok(r) => r,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("panic");
                if msg.contains(OVERFLOW_MSG) {
                    SolverResult::Unknown("arithmetic overflow in theory solver".to_string())
                } else {
                    // re-raise unrelated panics: they indicate bugs, not resource limits
                    std::panic::panic_any(msg.to_string())
                }
            }
        }
    }

    fn solve_nnf(&self, formula: &Formula) -> SolverResult {
        let mut search = Search {
            config: &self.config,
            decisions: 0,
            saw_resource_out: false,
        };
        let mut asserted = Vec::new();
        match search.explore(&mut asserted, &mut vec![formula.clone()]) {
            Some(model) => SolverResult::Sat(model),
            None => {
                if search.saw_resource_out {
                    SolverResult::Unknown("resource limit reached".to_string())
                } else {
                    SolverResult::Unsat
                }
            }
        }
    }
}

struct Search<'a> {
    config: &'a SolverConfig,
    decisions: usize,
    saw_resource_out: bool,
}

impl Search<'_> {
    /// Explores the remaining `worklist` under the constraints already in
    /// `asserted`; returns a model if a satisfying leaf is found.
    fn explore(
        &mut self,
        asserted: &mut Vec<SimplexConstraint>,
        worklist: &mut Vec<Formula>,
    ) -> Option<Model> {
        loop {
            // assert unit conjuncts before branching on any disjunction: the
            // theory-level pruning then has the full conjunctive context and
            // cuts refuted branches much earlier
            let next_index = worklist
                .iter()
                .rposition(|f| !matches!(f, Formula::Or(_)))
                .or(if worklist.is_empty() { None } else { Some(worklist.len() - 1) });
            let Some(next) = next_index.map(|i| worklist.remove(i)) else {
                // leaf: integer feasibility of the asserted conjunction
                return match solve_integer(asserted, &self.config.int_config) {
                    IntFeasResult::Sat(values) => Some(Model::from_values(values)),
                    IntFeasResult::Unsat => None,
                    IntFeasResult::ResourceOut => {
                        self.saw_resource_out = true;
                        None
                    }
                };
            };
            match next {
                Formula::True => {}
                Formula::False => return None,
                Formula::And(parts) => worklist.extend(parts),
                Formula::Atom(atom) => match atom_to_constraints(&atom) {
                    AtomConstraints::Single(c) => asserted.push(c),
                    AtomConstraints::Split(left, right) => {
                        // a disequality: branch on the two half-spaces
                        let disjunction = Formula::Or(vec![Formula::Atom(left), Formula::Atom(right)]);
                        worklist.push(disjunction);
                    }
                },
                Formula::Not(inner) => worklist.push(Formula::not(*inner)),
                Formula::Or(parts) => {
                    if self.config.early_pruning && !check_feasibility(asserted).is_feasible() {
                        return None;
                    }
                    for part in parts {
                        self.decisions += 1;
                        if self.decisions > self.config.max_decisions {
                            self.saw_resource_out = true;
                            return None;
                        }
                        let mut branch_asserted = asserted.clone();
                        let mut branch_worklist = worklist.clone();
                        branch_worklist.push(part);
                        if let Some(model) = self.explore(&mut branch_asserted, &mut branch_worklist)
                        {
                            return Some(model);
                        }
                    }
                    return None;
                }
                Formula::Forall(_, _) | Formula::Exists(_, _) => {
                    // unreachable: `solve` rejects quantified formulas upfront
                    self.saw_resource_out = true;
                    return None;
                }
            }
        }
    }
}

enum AtomConstraints {
    Single(SimplexConstraint),
    Split(Atom, Atom),
}

/// Translates an atom `expr ⋈ 0` over integers into simplex constraints:
/// strict comparisons are shifted by one, disequality splits into two atoms.
fn atom_to_constraints(atom: &Atom) -> AtomConstraints {
    let expr = atom.expr.clone();
    match atom.cmp {
        Cmp::Le => AtomConstraints::Single(SimplexConstraint { expr, rel: Rel::Le }),
        Cmp::Ge => AtomConstraints::Single(SimplexConstraint { expr, rel: Rel::Ge }),
        Cmp::Eq => AtomConstraints::Single(SimplexConstraint { expr, rel: Rel::Eq }),
        Cmp::Lt => AtomConstraints::Single(SimplexConstraint {
            expr: expr + LinExpr::constant(1),
            rel: Rel::Le,
        }),
        Cmp::Gt => AtomConstraints::Single(SimplexConstraint {
            expr: expr - LinExpr::constant(1),
            rel: Rel::Ge,
        }),
        Cmp::Ne => AtomConstraints::Split(
            Atom { expr: expr.clone(), cmp: Cmp::Lt },
            Atom { expr, cmp: Cmp::Gt },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarPool;

    fn solve(formula: &Formula) -> SolverResult {
        Solver::new().solve(formula)
    }

    fn assert_sat_and_model_checks(formula: &Formula) {
        match solve(formula) {
            SolverResult::Sat(model) => assert!(model.satisfies(formula), "model must satisfy"),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn simple_conjunction_sat() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let phi = Formula::and(vec![
            Formula::eq(LinExpr::var(x) + LinExpr::var(y), LinExpr::constant(5)),
            Formula::ge(LinExpr::var(x), LinExpr::constant(2)),
            Formula::ge(LinExpr::var(y), LinExpr::constant(2)),
        ]);
        assert_sat_and_model_checks(&phi);
    }

    #[test]
    fn simple_conjunction_unsat() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let phi = Formula::and(vec![
            Formula::gt(LinExpr::var(x), LinExpr::constant(3)),
            Formula::lt(LinExpr::var(x), LinExpr::constant(4)),
        ]);
        assert_eq!(solve(&phi), SolverResult::Unsat);
    }

    #[test]
    fn disjunction_explores_branches() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        // (x = 3 ∧ x = 4) ∨ x = 7
        let phi = Formula::or(vec![
            Formula::and(vec![
                Formula::eq(LinExpr::var(x), LinExpr::constant(3)),
                Formula::eq(LinExpr::var(x), LinExpr::constant(4)),
            ]),
            Formula::eq(LinExpr::var(x), LinExpr::constant(7)),
        ]);
        match solve(&phi) {
            SolverResult::Sat(m) => assert_eq!(m.value(x), 7),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn disequality_atom_is_split() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let phi = Formula::and(vec![
            Formula::ge(LinExpr::var(x), LinExpr::constant(0)),
            Formula::le(LinExpr::var(x), LinExpr::constant(1)),
            Formula::ne(LinExpr::var(x), LinExpr::constant(0)),
        ]);
        match solve(&phi) {
            SolverResult::Sat(m) => assert_eq!(m.value(x), 1),
            other => panic!("expected sat, got {other:?}"),
        }
        let phi_unsat = Formula::and(vec![
            phi,
            Formula::ne(LinExpr::var(x), LinExpr::constant(1)),
        ]);
        assert_eq!(solve(&phi_unsat), SolverResult::Unsat);
    }

    #[test]
    fn negation_of_complex_formula() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // ¬(x ≤ y ∨ x ≤ 0) ∧ y = 5  ⟹ x > y = 5
        let phi = Formula::and(vec![
            Formula::not(Formula::or(vec![
                Formula::le(LinExpr::var(x), LinExpr::var(y)),
                Formula::le(LinExpr::var(x), LinExpr::constant(0)),
            ])),
            Formula::eq(LinExpr::var(y), LinExpr::constant(5)),
        ]);
        match solve(&phi) {
            SolverResult::Sat(m) => {
                assert!(m.value(x) > 5);
                assert_eq!(m.value(y), 5);
                assert!(m.satisfies(&phi));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn integrality_matters() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        // 1 ≤ 3x ≤ 2 has rational but no integer solutions
        let phi = Formula::and(vec![
            Formula::ge(LinExpr::scaled_var(x, 3), LinExpr::constant(1)),
            Formula::le(LinExpr::scaled_var(x, 3), LinExpr::constant(2)),
        ]);
        assert_eq!(solve(&phi), SolverResult::Unsat);
    }

    #[test]
    fn trivial_formulas() {
        assert!(solve(&Formula::True).is_sat());
        assert_eq!(solve(&Formula::False), SolverResult::Unsat);
    }

    #[test]
    fn quantified_input_is_rejected() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let phi = Formula::forall(vec![x], Formula::ge(LinExpr::var(x), LinExpr::constant(0)));
        match solve(&phi) {
            SolverResult::Unknown(_) => {}
            other => panic!("expected unknown, got {other:?}"),
        }
    }

    #[test]
    fn nested_boolean_structure() {
        let mut pool = VarPool::new();
        let a = pool.fresh("a");
        let b = pool.fresh("b");
        let c = pool.fresh("c");
        // (a=1 ∨ a=2) ∧ (b = a + 1 ∨ b = a + 2) ∧ c = a + b ∧ c = 5
        let phi = Formula::and(vec![
            Formula::or(vec![
                Formula::eq(LinExpr::var(a), LinExpr::constant(1)),
                Formula::eq(LinExpr::var(a), LinExpr::constant(2)),
            ]),
            Formula::or(vec![
                Formula::eq(LinExpr::var(b), LinExpr::var(a) + LinExpr::constant(1)),
                Formula::eq(LinExpr::var(b), LinExpr::var(a) + LinExpr::constant(2)),
            ]),
            Formula::eq(LinExpr::var(c), LinExpr::var(a) + LinExpr::var(b)),
            Formula::eq(LinExpr::var(c), LinExpr::constant(5)),
        ]);
        match solve(&phi) {
            SolverResult::Sat(m) => {
                assert!(m.satisfies(&phi));
                assert_eq!(m.value(a) + m.value(b), 5);
            }
            other => panic!("expected sat, got {other:?}"),
        }
        // forcing c = 100 makes it unsat
        let phi_unsat = Formula::and(vec![phi, Formula::eq(LinExpr::var(c), LinExpr::constant(100))]);
        assert_eq!(solve(&phi_unsat), SolverResult::Unsat);
    }

    #[test]
    fn decision_limit_yields_unknown() {
        let mut pool = VarPool::new();
        let vars: Vec<Var> = (0..10).map(|i| pool.fresh(&format!("x{i}"))).collect();
        // a conjunction of 10 binary disjunctions with no solution, so the
        // solver has to enumerate all of them
        let mut conjuncts = Vec::new();
        for &v in &vars {
            conjuncts.push(Formula::or(vec![
                Formula::eq(LinExpr::var(v), LinExpr::constant(0)),
                Formula::eq(LinExpr::var(v), LinExpr::constant(1)),
            ]));
        }
        conjuncts.push(Formula::ge(
            LinExpr::sum_of_vars(vars.iter().copied()),
            LinExpr::constant(100),
        ));
        let config = SolverConfig { max_decisions: 3, ..SolverConfig::default() };
        match Solver::with_config(config).solve(&Formula::and(conjuncts)) {
            SolverResult::Unknown(_) => {}
            other => panic!("expected unknown, got {other:?}"),
        }
    }

    #[test]
    fn early_pruning_and_exhaustive_agree() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let phi = Formula::and(vec![
            Formula::eq(LinExpr::var(x) + LinExpr::var(y), LinExpr::constant(4)),
            Formula::or(vec![
                Formula::ge(LinExpr::var(x), LinExpr::constant(10)),
                Formula::eq(LinExpr::var(x), LinExpr::var(y)),
            ]),
            Formula::ge(LinExpr::var(x), LinExpr::constant(0)),
            Formula::le(LinExpr::var(x), LinExpr::constant(4)),
        ]);
        let pruned = Solver::with_config(SolverConfig { early_pruning: true, ..Default::default() })
            .solve(&phi);
        let exhaustive =
            Solver::with_config(SolverConfig { early_pruning: false, ..Default::default() })
                .solve(&phi);
        assert!(pruned.is_sat());
        assert!(exhaustive.is_sat());
    }

    #[test]
    fn model_defaults_unmentioned_variables_to_zero() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let unused = pool.fresh("unused");
        let phi = Formula::eq(LinExpr::var(x), LinExpr::constant(2));
        match solve(&phi) {
            SolverResult::Sat(m) => {
                assert_eq!(m.value(x), 2);
                assert_eq!(m.value(unused), 0);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }
}
