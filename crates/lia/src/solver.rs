//! A DPLL(T)-style satisfiability solver for quantifier-free LIA formulas.
//!
//! The search walks the Boolean structure of the (negation-normal-form)
//! formula, accumulating a conjunction of asserted linear constraints.  At
//! every disjunction it branches; before branching and at every leaf it asks
//! the theory solver ([`crate::simplex`] for the rational relaxation,
//! [`crate::intfeas`] for integer feasibility) whether the current
//! conjunction is still consistent.  This "structural DPLL(T)" is well suited
//! to the formulas produced by the paper's reductions, whose disjunctions are
//! few and shallow (the `φ_len ∨ (φ_sym ∧ φ_mis)` split, the per-pair
//! disjunction of `φ_mis`, and the spanning-tree disjunctions of the Parikh
//! formula).
//!
//! The solver is sound for both answers: `Sat` comes with a model that the
//! caller can (and the tests do) re-evaluate, and `Unsat` is only reported
//! when every branch was refuted by the theory without hitting a resource
//! limit.  Resource exhaustion and arithmetic overflow yield
//! [`SolverResult::Unknown`].

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::bounds::{BoundEnv, BoundOutcome, ConstraintIndex};
use crate::cancel::{CancelToken, CANCELLED_MSG, DEADLINE_MSG};
use crate::formula::{Atom, Cmp, Formula};
use crate::intfeas::{solve_integer, IntFeasConfig, IntFeasResult};
use crate::rational::OVERFLOW_MSG;
use crate::simplex::{Rel, SessionSimplex, SimplexConstraint};
use crate::term::{LinExpr, Var};

/// An integer model: a total assignment of the formula's variables
/// (variables the solver never had to constrain default to 0).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Model {
    values: BTreeMap<Var, i128>,
}

impl Model {
    /// Creates a model from explicit values.
    pub fn from_values(values: BTreeMap<Var, i128>) -> Model {
        Model { values }
    }

    /// The value of a variable (0 if unconstrained).
    pub fn value(&self, var: Var) -> i128 {
        self.values.get(&var).copied().unwrap_or(0)
    }

    /// Sets the value of a variable.
    pub fn set(&mut self, var: Var, value: i128) {
        self.values.insert(var, value);
    }

    /// Iterates over the explicitly assigned variables.
    pub fn iter(&self) -> impl Iterator<Item = (Var, i128)> + '_ {
        self.values.iter().map(|(&v, &k)| (v, k))
    }

    /// Evaluates a quantifier-free formula under this model.
    pub fn satisfies(&self, formula: &Formula) -> bool {
        formula.eval(&|v| self.value(v))
    }
}

/// Result of a satisfiability query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolverResult {
    /// The formula is satisfiable; a model is attached.
    Sat(Model),
    /// The formula is unsatisfiable.
    Unsat,
    /// The solver could not decide within its resource limits (or the input
    /// was outside the supported fragment); the string describes why.
    Unknown(String),
}

impl SolverResult {
    /// Returns `true` for [`SolverResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SolverResult::Sat(_))
    }

    /// Returns `true` for [`SolverResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolverResult::Unsat)
    }

    /// Extracts the model of a `Sat` result.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SolverResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Which search core decides the Boolean structure.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SearchEngine {
    /// The clause-learning CDCL(T) engine of [`crate::cdcl`]: clausification
    /// with structural hashing, two-watched-literal propagation, 1UIP
    /// learning, backjumping, restarts.  The default — it is the only engine
    /// that closes the loopy unsat families (conflict learning prunes the
    /// symmetric mismatch case splits).
    #[default]
    Cdcl,
    /// The recursive structural DPLL(T) walk below.  Kept as a
    /// differential-testing oracle and for the ablation benchmarks.
    Structural,
}

/// Tuning knobs of the solver.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// The search core ([`SearchEngine::Cdcl`] by default).
    pub engine: SearchEngine,
    /// Prune disjunction branches whose asserted prefix is already
    /// rationally infeasible.  (Structural engine only; the
    /// `early_pruning_and_exhaustive_agree` test exercises both settings.)
    pub early_pruning: bool,
    /// Maximum number of disjunction branches explored (structural engine).
    pub max_decisions: usize,
    /// Maximum number of conflicts before the CDCL engine reports
    /// `Unknown` (its analogue of `max_decisions`).  In an incremental
    /// session the budget applies per `solve` call.
    pub max_conflicts: usize,
    /// Live learned clauses beyond which the CDCL engine's LBD-ranked GC
    /// fires (at restarts and between incremental solves); the threshold
    /// then grows geometrically.
    pub learnt_cap: usize,
    /// Theory propagation in the CDCL engine: after each bound fixpoint,
    /// literals entailed by the current intervals are enqueued (with lazy
    /// explanations) instead of being rediscovered as conflicts.  On by
    /// default; the off setting is kept as a differential oracle.
    pub theory_propagation: bool,
    /// Persistent Dutertre–de Moura tableau for the CDCL engine's leaf
    /// feasibility checks (atoms registered once, O(1) backtrackable bound
    /// assertions, warm-started pivoting).  On by default; off rebuilds a
    /// tableau per leaf check — the PR-4 behaviour of *this* path, kept
    /// as a differential oracle and as the ablation baseline.  The switch
    /// governs only the engine's rational leaf checks: branch-and-bound
    /// ([`crate::intfeas`]) and the structural engine's pre-branch checks
    /// always run their own incremental tableaux.
    pub incremental_simplex: bool,
    /// Assignment-guided theory propagation in the CDCL engine: at the
    /// propagation fixpoint before each decision, a pivot-budgeted check of
    /// the persistent tableau runs eagerly and, when feasible, the bounds
    /// its rows imply are scanned for entailed multi-variable atoms (the
    /// ones the interval fixpoint cannot see), which are enqueued through
    /// the lazy-explanation path.  On by default; requires
    /// `incremental_simplex` and `theory_propagation`.  Off is the
    /// ablation baseline isolating the tableau-layout win from the
    /// propagation win.
    pub guided_propagation: bool,
    /// Record a replayable proof of every Unsat answer into a
    /// [`crate::proof::ProofBuilder`]: root clauses, theory lemmas with
    /// arithmetic certificates, and the RUP hint chain of every learned
    /// clause.  Off by default — logging costs memory proportional to the
    /// search and makes conflict explanations slightly more eager (leaf
    /// cores are minimised so Farkas certificates exist).  The log is
    /// retrieved through [`crate::incremental::IncrementalSolver::proof`].
    pub proof_logging: bool,
    /// Limits of the integer feasibility backend.
    pub int_config: IntFeasConfig,
    /// Cooperative cancellation/deadline token, polled at every disjunction
    /// decision and periodically along unit-propagation chains.  The default
    /// token never fires.
    pub cancel: CancelToken,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            engine: SearchEngine::default(),
            early_pruning: true,
            // A backstop against runaway searches; wall clocks are governed
            // by the `cancel` token's deadline.  Bound propagation keeps
            // decisions cheap, so this sits above what the benchmark
            // families need while keeping resource-outs at a few seconds.
            max_decisions: 4_000,
            // the learner converges in far fewer conflicts than the
            // structural engine takes decisions, but each conflict does more
            // work; this keeps resource-outs at a few seconds as well
            max_conflicts: 50_000,
            // far above what one query learns; long incremental sessions
            // are what the GC exists for
            learnt_cap: 8_000,
            theory_propagation: true,
            incremental_simplex: true,
            guided_propagation: true,
            proof_logging: false,
            int_config: IntFeasConfig::default(),
            cancel: CancelToken::none(),
        }
    }
}

impl SolverConfig {
    /// This configuration with the given engine selected.
    pub fn with_engine(mut self, engine: SearchEngine) -> SolverConfig {
        self.engine = engine;
        self
    }
}

/// The DPLL(T) solver.
#[derive(Clone, Debug, Default)]
pub struct Solver {
    config: SolverConfig,
}

impl Solver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Solver {
        Solver {
            config: SolverConfig::default(),
        }
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        Solver { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Decides satisfiability of a quantifier-free LIA formula.
    ///
    /// Quantified formulas yield `Unknown` (the `¬contains` front end in
    /// `posr-core` performs its own instantiation before calling this).
    /// Arithmetic overflow inside the theory solver is caught and reported
    /// as `Unknown` rather than producing a wrong answer.
    pub fn solve(&self, formula: &Formula) -> SolverResult {
        if !formula.is_quantifier_free() {
            return SolverResult::Unknown("formula contains quantifiers".to_string());
        }
        let nnf = formula.nnf().simplify();
        let result = catch_unwind(AssertUnwindSafe(|| self.solve_nnf(&nnf)));
        match result {
            Ok(r) => r,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("panic");
                if msg.contains(OVERFLOW_MSG) {
                    SolverResult::Unknown("arithmetic overflow in theory solver".to_string())
                } else {
                    // re-raise unrelated panics: they indicate bugs, not resource limits
                    std::panic::panic_any(msg.to_string())
                }
            }
        }
    }

    fn solve_nnf(&self, formula: &Formula) -> SolverResult {
        if self.config.engine == SearchEngine::Cdcl {
            return crate::cdcl::solve_cdcl(formula, &self.config);
        }
        let mut search = Search {
            config: &self.config,
            decisions: 0,
            steps: 0,
            saw_resource_out: false,
            cancelled: false,
            tableau: SessionSimplex::new(),
        };
        let mut asserted = Vec::new();
        match search.explore(&mut asserted, &mut vec![formula.clone()]) {
            Some(model) => SolverResult::Sat(model),
            None => {
                if search.cancelled {
                    let reason = if self.config.cancel.flag_raised() {
                        CANCELLED_MSG
                    } else {
                        DEADLINE_MSG
                    };
                    SolverResult::Unknown(reason.to_string())
                } else if search.saw_resource_out {
                    SolverResult::Unknown("resource limit reached".to_string())
                } else {
                    SolverResult::Unsat
                }
            }
        }
    }
}

/// How many worklist steps pass between cancellation polls on straight-line
/// (disjunction-free) stretches.  Disjunction decisions always poll.
const CANCEL_POLL_INTERVAL: usize = 64;

struct Search<'a> {
    config: &'a SolverConfig,
    decisions: usize,
    steps: usize,
    saw_resource_out: bool,
    cancelled: bool,
    /// Session-local incremental tableau for the pre-branch rational
    /// feasibility checks: the DFS re-checks clone-and-extend prefixes of
    /// the same asserted conjunction, so each check retracts to the common
    /// prefix with the previous one and asserts only the new suffix,
    /// warm-starting the pivoting from the shared basis.
    tableau: SessionSimplex,
}

impl Search<'_> {
    /// Explores the remaining `worklist` under the constraints already in
    /// `asserted`; returns a model if a satisfying leaf is found.
    fn explore(
        &mut self,
        asserted: &mut Vec<SimplexConstraint>,
        worklist: &mut Vec<Formula>,
    ) -> Option<Model> {
        loop {
            if self.config.cancel.can_fire() {
                self.steps += 1;
                if self.steps.is_multiple_of(CANCEL_POLL_INTERVAL)
                    && self.config.cancel.is_cancelled()
                {
                    self.cancelled = true;
                    return None;
                }
            }
            // assert unit conjuncts before branching on any disjunction: the
            // theory-level pruning then has the full conjunctive context and
            // cuts refuted branches much earlier
            let next_index = worklist.iter().rposition(|f| !matches!(f, Formula::Or(_)));
            let Some(next) = next_index.map(|i| worklist.remove(i)) else {
                if worklist.is_empty() {
                    // leaf: integer feasibility of the asserted conjunction,
                    // with a cheap bound-propagation refutation first
                    if let (_, BoundOutcome::Refuted) = BoundEnv::from_constraints(asserted) {
                        return None;
                    }
                    return match solve_integer(asserted, &self.config.int_config) {
                        IntFeasResult::Sat(values) => Some(Model::from_values(values)),
                        IntFeasResult::Unsat => None,
                        IntFeasResult::ResourceOut => {
                            self.saw_resource_out = true;
                            None
                        }
                    };
                }
                // only disjunctions left: propagate, then branch.  Unit
                // propagation drops every disjunct whose implied unit atoms
                // contradict the asserted bounds (sound: bound refutation
                // implies integer infeasibility) and asserts disjuncts that
                // became forced, without consuming decisions.  Without this
                // the flow formulas of the Parikh encodings — many binary
                // disjunctions coupled through shared counters — take
                // exponential search to refute.
                if self.config.early_pruning {
                    let (env, outcome) = BoundEnv::from_constraints(asserted);
                    if outcome == BoundOutcome::Refuted {
                        return None;
                    }
                    let index = ConstraintIndex::build(asserted);
                    let mut forced = false;
                    let mut i = 0;
                    while i < worklist.len() {
                        let Formula::Or(parts) = &mut worklist[i] else {
                            unreachable!("all-Or worklist")
                        };
                        // an entailed disjunct makes the whole disjunction
                        // vacuous — drop it instead of branching on it
                        if parts.iter().any(|part| satisfied_by_bounds(&env, part)) {
                            worklist.swap_remove(i);
                            continue;
                        }
                        parts.retain(|part| {
                            !falsified_by_bounds(&env, part)
                                && !refuted_by_bounds(&env, asserted, &index, part)
                        });
                        match parts.len() {
                            0 => return None,
                            1 => forced = true,
                            _ => {}
                        }
                        i += 1;
                    }
                    if worklist.is_empty() {
                        continue;
                    }
                    if forced {
                        for entry in worklist.iter_mut() {
                            let Formula::Or(parts) = entry else { continue };
                            if parts.len() == 1 {
                                *entry = parts.pop().expect("singleton disjunction");
                            }
                        }
                        continue;
                    }
                    if self.tableau.infeasible(asserted) {
                        return None;
                    }
                }
                // branch on the smallest surviving disjunction
                let pick = worklist
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, f)| match f {
                        Formula::Or(parts) => parts.len(),
                        _ => usize::MAX,
                    })
                    .map(|(i, _)| i)
                    .expect("worklist is non-empty");
                let Formula::Or(parts) = worklist.remove(pick) else {
                    unreachable!("all-Or worklist")
                };
                for part in parts {
                    if self.config.cancel.is_cancelled() {
                        self.cancelled = true;
                        return None;
                    }
                    self.decisions += 1;
                    if self.decisions > self.config.max_decisions {
                        self.saw_resource_out = true;
                        return None;
                    }
                    let mut branch_asserted = asserted.clone();
                    let mut branch_worklist = worklist.clone();
                    branch_worklist.push(part);
                    if let Some(model) = self.explore(&mut branch_asserted, &mut branch_worklist) {
                        return Some(model);
                    }
                }
                return None;
            };
            match next {
                Formula::True => {}
                Formula::False => return None,
                Formula::And(parts) => worklist.extend(parts),
                Formula::Atom(atom) => match atom_to_constraints(&atom) {
                    AtomConstraints::Single(c) => asserted.push(c),
                    AtomConstraints::Split(left, right) => {
                        // a disequality: branch on the two half-spaces
                        let disjunction =
                            Formula::Or(vec![Formula::Atom(left), Formula::Atom(right)]);
                        worklist.push(disjunction);
                    }
                },
                Formula::Not(inner) => worklist.push(Formula::not(*inner)),
                Formula::Or(_) => unreachable!("disjunctions are handled above"),
                Formula::Forall(_, _) | Formula::Exists(_, _) => {
                    // unreachable: `solve` rejects quantified formulas upfront
                    self.saw_resource_out = true;
                    return None;
                }
            }
        }
    }
}

/// `true` only when every point of the current bound box satisfies the
/// formula — the disjunction containing such a disjunct is entailed and can
/// be dropped without branching.  This is what eliminates vacuous
/// implications (`Σ = 1 → …` where the counters are already pinned to 0:
/// the negated premise is certainly true).
fn satisfied_by_bounds(env: &BoundEnv, formula: &Formula) -> bool {
    match formula {
        Formula::True => true,
        Formula::Atom(atom) => {
            let zero = crate::rational::Rat::from_int(0);
            let (min, max) = env.expr_range(&atom.expr);
            match atom.cmp {
                Cmp::Le => max.is_some_and(|m| m <= zero),
                Cmp::Lt => max.is_some_and(|m| m < zero),
                Cmp::Ge => min.is_some_and(|m| m >= zero),
                Cmp::Gt => min.is_some_and(|m| m > zero),
                Cmp::Eq => (min == Some(zero)) && (max == Some(zero)),
                Cmp::Ne => max.is_some_and(|m| m < zero) || min.is_some_and(|m| m > zero),
            }
        }
        Formula::And(parts) => parts.iter().all(|p| satisfied_by_bounds(env, p)),
        Formula::Or(parts) => parts.iter().any(|p| satisfied_by_bounds(env, p)),
        _ => false,
    }
}

/// The dual of [`satisfied_by_bounds`]: `true` only when *no* point of the
/// current bound box satisfies the formula.  This is what kills `≠`
/// disjuncts whose expression the bounds pin to zero (e.g. the `φ_len`
/// branch of a disequality once the lengths are forced equal) — atoms the
/// unit-probe path must skip because disequalities contribute no simplex
/// constraint.
fn falsified_by_bounds(env: &BoundEnv, formula: &Formula) -> bool {
    match formula {
        Formula::False => true,
        Formula::Atom(atom) => {
            let zero = crate::rational::Rat::from_int(0);
            let (min, max) = env.expr_range(&atom.expr);
            match atom.cmp {
                Cmp::Le => min.is_some_and(|m| m > zero),
                Cmp::Lt => min.is_some_and(|m| m >= zero),
                Cmp::Ge => max.is_some_and(|m| m < zero),
                Cmp::Gt => max.is_some_and(|m| m <= zero),
                Cmp::Eq => max.is_some_and(|m| m < zero) || min.is_some_and(|m| m > zero),
                Cmp::Ne => (min == Some(zero)) && (max == Some(zero)),
            }
        }
        Formula::And(parts) => parts.iter().any(|p| falsified_by_bounds(env, p)),
        Formula::Or(parts) => parts.iter().all(|p| falsified_by_bounds(env, p)),
        _ => false,
    }
}

/// Collects the unit simplex constraints a formula *implies* (top-level
/// atoms of conjunctions; disequalities and nested disjunctions contribute
/// nothing).  Returns `false` if the formula is syntactically `False`.
fn collect_probe(formula: &Formula, out: &mut Vec<SimplexConstraint>) -> bool {
    match formula {
        Formula::False => false,
        Formula::Atom(atom) => {
            if let AtomConstraints::Single(c) = atom_to_constraints(atom) {
                out.push(c);
            }
            true
        }
        Formula::And(parts) => parts.iter().all(|p| collect_probe(p, out)),
        _ => true,
    }
}

/// `true` if asserting the disjunct's unit atoms into the bound environment
/// of the current node derives a contradiction — a sound reason to drop the
/// disjunct (bound refutation implies integer infeasibility).  The asserted
/// context is re-propagated under the tightened bounds so the probe can
/// cascade through the flow equalities, which is where most refutations of
/// the Parikh encodings come from.
fn refuted_by_bounds(
    env: &BoundEnv,
    asserted: &[SimplexConstraint],
    index: &ConstraintIndex,
    disjunct: &Formula,
) -> bool {
    let mut probe = Vec::new();
    if !collect_probe(disjunct, &mut probe) {
        return true;
    }
    if probe.is_empty() {
        return false;
    }
    let mut local = env.clone();
    let budget = 8 * asserted.len().max(8);
    local.propagate(&probe, asserted, index, budget) == BoundOutcome::Refuted
}

enum AtomConstraints {
    Single(SimplexConstraint),
    Split(Atom, Atom),
}

/// Translates an atom `expr ⋈ 0` over integers into simplex constraints:
/// strict comparisons are shifted by one, disequality splits into two atoms.
fn atom_to_constraints(atom: &Atom) -> AtomConstraints {
    let expr = atom.expr.clone();
    match atom.cmp {
        Cmp::Le => AtomConstraints::Single(SimplexConstraint { expr, rel: Rel::Le }),
        Cmp::Ge => AtomConstraints::Single(SimplexConstraint { expr, rel: Rel::Ge }),
        Cmp::Eq => AtomConstraints::Single(SimplexConstraint { expr, rel: Rel::Eq }),
        Cmp::Lt => AtomConstraints::Single(SimplexConstraint {
            expr: expr + LinExpr::constant(1),
            rel: Rel::Le,
        }),
        Cmp::Gt => AtomConstraints::Single(SimplexConstraint {
            expr: expr - LinExpr::constant(1),
            rel: Rel::Ge,
        }),
        Cmp::Ne => AtomConstraints::Split(
            Atom {
                expr: expr.clone(),
                cmp: Cmp::Lt,
            },
            Atom { expr, cmp: Cmp::Gt },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarPool;

    fn solve(formula: &Formula) -> SolverResult {
        Solver::new().solve(formula)
    }

    fn assert_sat_and_model_checks(formula: &Formula) {
        match solve(formula) {
            SolverResult::Sat(model) => assert!(model.satisfies(formula), "model must satisfy"),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn simple_conjunction_sat() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let phi = Formula::and(vec![
            Formula::eq(LinExpr::var(x) + LinExpr::var(y), LinExpr::constant(5)),
            Formula::ge(LinExpr::var(x), LinExpr::constant(2)),
            Formula::ge(LinExpr::var(y), LinExpr::constant(2)),
        ]);
        assert_sat_and_model_checks(&phi);
    }

    #[test]
    fn simple_conjunction_unsat() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let phi = Formula::and(vec![
            Formula::gt(LinExpr::var(x), LinExpr::constant(3)),
            Formula::lt(LinExpr::var(x), LinExpr::constant(4)),
        ]);
        assert_eq!(solve(&phi), SolverResult::Unsat);
    }

    #[test]
    fn disjunction_explores_branches() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        // (x = 3 ∧ x = 4) ∨ x = 7
        let phi = Formula::or(vec![
            Formula::and(vec![
                Formula::eq(LinExpr::var(x), LinExpr::constant(3)),
                Formula::eq(LinExpr::var(x), LinExpr::constant(4)),
            ]),
            Formula::eq(LinExpr::var(x), LinExpr::constant(7)),
        ]);
        match solve(&phi) {
            SolverResult::Sat(m) => assert_eq!(m.value(x), 7),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn disequality_atom_is_split() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let phi = Formula::and(vec![
            Formula::ge(LinExpr::var(x), LinExpr::constant(0)),
            Formula::le(LinExpr::var(x), LinExpr::constant(1)),
            Formula::ne(LinExpr::var(x), LinExpr::constant(0)),
        ]);
        match solve(&phi) {
            SolverResult::Sat(m) => assert_eq!(m.value(x), 1),
            other => panic!("expected sat, got {other:?}"),
        }
        let phi_unsat = Formula::and(vec![
            phi,
            Formula::ne(LinExpr::var(x), LinExpr::constant(1)),
        ]);
        assert_eq!(solve(&phi_unsat), SolverResult::Unsat);
    }

    #[test]
    fn negation_of_complex_formula() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        // ¬(x ≤ y ∨ x ≤ 0) ∧ y = 5  ⟹ x > y = 5
        let phi = Formula::and(vec![
            Formula::not(Formula::or(vec![
                Formula::le(LinExpr::var(x), LinExpr::var(y)),
                Formula::le(LinExpr::var(x), LinExpr::constant(0)),
            ])),
            Formula::eq(LinExpr::var(y), LinExpr::constant(5)),
        ]);
        match solve(&phi) {
            SolverResult::Sat(m) => {
                assert!(m.value(x) > 5);
                assert_eq!(m.value(y), 5);
                assert!(m.satisfies(&phi));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn integrality_matters() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        // 1 ≤ 3x ≤ 2 has rational but no integer solutions
        let phi = Formula::and(vec![
            Formula::ge(LinExpr::scaled_var(x, 3), LinExpr::constant(1)),
            Formula::le(LinExpr::scaled_var(x, 3), LinExpr::constant(2)),
        ]);
        assert_eq!(solve(&phi), SolverResult::Unsat);
    }

    #[test]
    fn trivial_formulas() {
        assert!(solve(&Formula::True).is_sat());
        assert_eq!(solve(&Formula::False), SolverResult::Unsat);
    }

    #[test]
    fn quantified_input_is_rejected() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let phi = Formula::forall(vec![x], Formula::ge(LinExpr::var(x), LinExpr::constant(0)));
        match solve(&phi) {
            SolverResult::Unknown(_) => {}
            other => panic!("expected unknown, got {other:?}"),
        }
    }

    #[test]
    fn nested_boolean_structure() {
        let mut pool = VarPool::new();
        let a = pool.fresh("a");
        let b = pool.fresh("b");
        let c = pool.fresh("c");
        // (a=1 ∨ a=2) ∧ (b = a + 1 ∨ b = a + 2) ∧ c = a + b ∧ c = 5
        let phi = Formula::and(vec![
            Formula::or(vec![
                Formula::eq(LinExpr::var(a), LinExpr::constant(1)),
                Formula::eq(LinExpr::var(a), LinExpr::constant(2)),
            ]),
            Formula::or(vec![
                Formula::eq(LinExpr::var(b), LinExpr::var(a) + LinExpr::constant(1)),
                Formula::eq(LinExpr::var(b), LinExpr::var(a) + LinExpr::constant(2)),
            ]),
            Formula::eq(LinExpr::var(c), LinExpr::var(a) + LinExpr::var(b)),
            Formula::eq(LinExpr::var(c), LinExpr::constant(5)),
        ]);
        match solve(&phi) {
            SolverResult::Sat(m) => {
                assert!(m.satisfies(&phi));
                assert_eq!(m.value(a) + m.value(b), 5);
            }
            other => panic!("expected sat, got {other:?}"),
        }
        // forcing c = 100 makes it unsat
        let phi_unsat = Formula::and(vec![
            phi,
            Formula::eq(LinExpr::var(c), LinExpr::constant(100)),
        ]);
        assert_eq!(solve(&phi_unsat), SolverResult::Unsat);
    }

    #[test]
    fn decision_limit_yields_unknown() {
        let mut pool = VarPool::new();
        let vars: Vec<Var> = (0..10).map(|i| pool.fresh(&format!("x{i}"))).collect();
        // a conjunction of 10 binary disjunctions with no solution, so the
        // solver has to enumerate all of them
        let mut conjuncts = Vec::new();
        for &v in &vars {
            conjuncts.push(Formula::or(vec![
                Formula::eq(LinExpr::var(v), LinExpr::constant(0)),
                Formula::eq(LinExpr::var(v), LinExpr::constant(1)),
            ]));
        }
        conjuncts.push(Formula::ge(
            LinExpr::sum_of_vars(vars.iter().copied()),
            LinExpr::constant(100),
        ));
        let config = SolverConfig {
            engine: SearchEngine::Structural,
            max_decisions: 3,
            ..SolverConfig::default()
        };
        match Solver::with_config(config).solve(&Formula::and(conjuncts)) {
            SolverResult::Unknown(_) => {}
            other => panic!("expected unknown, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_token_yields_unknown() {
        let mut pool = VarPool::new();
        let vars: Vec<Var> = (0..10).map(|i| pool.fresh(&format!("x{i}"))).collect();
        let mut conjuncts = Vec::new();
        for &v in &vars {
            conjuncts.push(Formula::or(vec![
                Formula::eq(LinExpr::var(v), LinExpr::constant(0)),
                Formula::eq(LinExpr::var(v), LinExpr::constant(1)),
            ]));
        }
        conjuncts.push(Formula::ge(
            LinExpr::sum_of_vars(vars.iter().copied()),
            LinExpr::constant(100),
        ));
        let config = SolverConfig {
            cancel: CancelToken::new(),
            ..SolverConfig::default()
        };
        config.cancel.cancel();
        match Solver::with_config(config).solve(&Formula::and(conjuncts)) {
            SolverResult::Unknown(reason) => assert_eq!(reason, CANCELLED_MSG),
            other => panic!("expected unknown, got {other:?}"),
        }
    }

    #[test]
    fn early_pruning_and_exhaustive_agree() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let phi = Formula::and(vec![
            Formula::eq(LinExpr::var(x) + LinExpr::var(y), LinExpr::constant(4)),
            Formula::or(vec![
                Formula::ge(LinExpr::var(x), LinExpr::constant(10)),
                Formula::eq(LinExpr::var(x), LinExpr::var(y)),
            ]),
            Formula::ge(LinExpr::var(x), LinExpr::constant(0)),
            Formula::le(LinExpr::var(x), LinExpr::constant(4)),
        ]);
        // `early_pruning` only affects the structural engine, so pin it —
        // with the CDCL default this test would compare CDCL to itself
        let pruned = Solver::with_config(SolverConfig {
            engine: SearchEngine::Structural,
            early_pruning: true,
            ..Default::default()
        })
        .solve(&phi);
        let exhaustive = Solver::with_config(SolverConfig {
            engine: SearchEngine::Structural,
            early_pruning: false,
            ..Default::default()
        })
        .solve(&phi);
        assert!(pruned.is_sat());
        assert!(exhaustive.is_sat());
    }

    #[test]
    fn model_defaults_unmentioned_variables_to_zero() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let unused = pool.fresh("unused");
        let phi = Formula::eq(LinExpr::var(x), LinExpr::constant(2));
        match solve(&phi) {
            SolverResult::Sat(m) => {
                assert_eq!(m.value(x), 2);
                assert_eq!(m.value(unused), 0);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }
}
