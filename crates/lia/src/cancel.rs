//! Cooperative cancellation for long-running solver calls.
//!
//! A [`CancelToken`] combines an optional shared flag (set by another thread
//! via [`CancelToken::cancel`]) with an optional wall-clock deadline.  Every
//! layer of the solving stack — the DPLL(T) search of this crate, the
//! position procedure and the baseline solvers of `posr-core`, and the
//! portfolio engine of `posr-portfolio` — polls the token at its branch
//! points and unwinds with an `Unknown` answer once it fires.  Polling a
//! token that has neither a flag nor a deadline is free, so sequential
//! callers pay nothing for the plumbing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use posr_obs::Budget;

/// The `Unknown` reason reported by every layer when a token fires through
/// its flag (as opposed to its deadline).
pub const CANCELLED_MSG: &str = "cancelled";

/// The `Unknown` reason reported when a token fires through its deadline.
pub const DEADLINE_MSG: &str = "deadline exceeded";

/// A cloneable cancellation/deadline/budget token.
///
/// Clones share the underlying flag: cancelling any clone cancels them all.
/// A token may also carry a shared [`Budget`] (memory + conflict axes);
/// an exceeded axis fires the token exactly like a raised flag, so every
/// existing poll point degrades to the same clean `Unknown`.  The default
/// token ([`CancelToken::none`]) can never fire.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
    budget: Option<Arc<Budget>>,
}

impl CancelToken {
    /// A token that can never fire (the default for sequential solving).
    pub fn none() -> CancelToken {
        CancelToken::default()
    }

    /// A fresh cancellable token with no deadline.
    pub fn new() -> CancelToken {
        CancelToken {
            flag: Some(Arc::new(AtomicBool::new(false))),
            deadline: None,
            budget: None,
        }
    }

    /// A fresh cancellable token that also fires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            flag: Some(Arc::new(AtomicBool::new(false))),
            deadline: Some(deadline),
            budget: None,
        }
    }

    /// This token with `budget` attached: the token fires once any budget
    /// axis is exceeded.  Clones (and [`merged_with_deadline`] results)
    /// share the budget.
    ///
    /// [`merged_with_deadline`]: CancelToken::merged_with_deadline
    pub fn with_budget(mut self, budget: Arc<Budget>) -> CancelToken {
        self.budget = Some(budget);
        self
    }

    /// The attached budget, if any.
    pub fn budget(&self) -> Option<&Arc<Budget>> {
        self.budget.as_ref()
    }

    /// The wall-clock deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// A token sharing this one's flag whose deadline is the earlier of this
    /// one's and `deadline`.  Used to fold legacy `Option<Instant>` deadline
    /// fields into the token that is actually polled.
    pub fn merged_with_deadline(&self, deadline: Option<Instant>) -> CancelToken {
        let deadline = match (self.deadline, deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        CancelToken {
            flag: self.flag.clone(),
            deadline,
            budget: self.budget.clone(),
        }
    }

    /// Fires the shared flag.  Tokens without a flag ([`CancelToken::none`])
    /// ignore the request.
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// `true` once the flag is set; does not consult the deadline.
    pub fn flag_raised(&self) -> bool {
        self.flag
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// The budget axis currently exceeded, if any.
    pub fn budget_exceeded(&self) -> Option<&'static str> {
        self.budget.as_ref().and_then(|b| b.exceeded_axis())
    }

    /// `true` once the flag is set, the deadline has passed, or a budget
    /// axis is exceeded.
    pub fn is_cancelled(&self) -> bool {
        if self.flag_raised() {
            return true;
        }
        if self.budget_exceeded().is_some() {
            return true;
        }
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// `true` if polling this token could ever return `true` (used to skip
    /// `Instant::now` syscalls on the fast path).
    pub fn can_fire(&self) -> bool {
        self.flag.is_some()
            || self.deadline.is_some()
            || self.budget.as_ref().is_some_and(|b| b.can_fire())
    }

    /// The `Unknown` reason matching the way the token fired.
    pub fn unknown_reason(&self) -> String {
        if self.flag_raised() {
            return CANCELLED_MSG.to_string();
        }
        if let Some(axis) = self.budget_exceeded() {
            return axis.to_string();
        }
        DEADLINE_MSG.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn none_never_fires() {
        let token = CancelToken::none();
        assert!(!token.is_cancelled());
        token.cancel(); // a no-op, not a panic
        assert!(!token.is_cancelled());
        assert!(!token.can_fire());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.unknown_reason(), CANCELLED_MSG);
    }

    #[test]
    fn deadline_fires() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(token.is_cancelled());
        assert_eq!(token.unknown_reason(), DEADLINE_MSG);
    }

    #[test]
    fn merged_deadline_takes_the_earlier() {
        let early = Instant::now();
        let late = early + Duration::from_secs(60);
        let token = CancelToken::with_deadline(late).merged_with_deadline(Some(early));
        assert_eq!(token.deadline(), Some(early));
        // the merged clone still shares the flag
        let base = CancelToken::new();
        let merged = base.merged_with_deadline(Some(late));
        base.cancel();
        assert!(merged.is_cancelled());
    }

    #[test]
    fn budget_axes_fire_the_token() {
        let budget = Arc::new(Budget::unlimited().with_mem_limit(100));
        let token = CancelToken::new().with_budget(Arc::clone(&budget));
        assert!(token.can_fire());
        assert!(!token.is_cancelled());
        budget.charge_mem(101);
        assert!(token.is_cancelled());
        assert_eq!(token.unknown_reason(), posr_obs::MEM_BUDGET_MSG);
        // clones and deadline merges share the budget
        let merged = token.merged_with_deadline(None);
        assert!(merged.is_cancelled());
        // the flag takes precedence in the reported reason
        token.cancel();
        assert_eq!(token.unknown_reason(), CANCELLED_MSG);
    }

    #[test]
    fn conflict_budget_reports_its_axis() {
        let budget = Arc::new(Budget::unlimited().with_conflict_limit(5));
        let token = CancelToken::none().with_budget(Arc::clone(&budget));
        assert!(token.can_fire());
        budget.charge_conflicts(6);
        assert!(token.is_cancelled());
        assert_eq!(token.unknown_reason(), posr_obs::CONFLICT_BUDGET_MSG);
    }

    #[test]
    fn cancellation_crosses_threads() {
        let token = CancelToken::new();
        let worker = token.clone();
        let handle = std::thread::spawn(move || {
            while !worker.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
            true
        });
        std::thread::sleep(Duration::from_millis(5));
        token.cancel();
        assert!(handle.join().unwrap());
    }
}
