//! Linear integer arithmetic (LIA) for the `posr` string solver.
//!
//! The decision procedure of *"A Uniform Framework for Handling Position
//! Constraints in String Solving"* reduces position constraints over regular
//! languages to (possibly quantified) LIA formulas built from Parikh images
//! of tag automata.  This crate is the arithmetic substrate of that
//! reduction:
//!
//! * [`rational`] — exact rational arithmetic over checked `i128`,
//! * [`term`] — integer variables and linear expressions,
//! * [`formula`] — quantifier-free and ∀/∃-quantified LIA formulas with
//!   evaluation, substitution and normal forms,
//! * [`simplex`] — a general-simplex feasibility checker over the rationals,
//! * [`intfeas`] — integer feasibility by branch-and-bound on top of the
//!   simplex, with sound resource limits,
//! * [`solver`] — a DPLL(T)-style satisfiability solver for quantifier-free
//!   LIA formulas with arbitrary Boolean structure (the stand-in for the LIA
//!   backend of Z3 used by Z3-Noodler in the paper's implementation).
//!
//! # Example
//!
//! ```
//! use posr_lia::formula::Formula;
//! use posr_lia::term::{LinExpr, VarPool};
//! use posr_lia::solver::{Solver, SolverResult};
//!
//! let mut pool = VarPool::new();
//! let x = pool.fresh("x");
//! let y = pool.fresh("y");
//! // x + y = 5  ∧  x ≥ 2  ∧  y ≥ 2
//! let phi = Formula::and(vec![
//!     Formula::eq(LinExpr::var(x) + LinExpr::var(y), LinExpr::constant(5)),
//!     Formula::ge(LinExpr::var(x), LinExpr::constant(2)),
//!     Formula::ge(LinExpr::var(y), LinExpr::constant(2)),
//! ]);
//! let result = Solver::new().solve(&phi);
//! match result {
//!     SolverResult::Sat(model) => {
//!         assert_eq!(model.value(x) + model.value(y), 5);
//!     }
//!     _ => panic!("expected sat"),
//! }
//! ```

pub mod bounds;
pub mod cancel;
pub mod formula;
pub mod intfeas;
pub mod rational;
pub mod simplex;
pub mod solver;
pub mod term;

pub use cancel::CancelToken;
pub use formula::{Atom, Cmp, Formula};
pub use rational::Rat;
pub use solver::{Model, Solver, SolverConfig, SolverResult};
pub use term::{LinExpr, Var, VarPool};
