//! Linear integer arithmetic (LIA) for the `posr` string solver.
//!
//! The decision procedure of *"A Uniform Framework for Handling Position
//! Constraints in String Solving"* reduces position constraints over regular
//! languages to (possibly quantified) LIA formulas built from Parikh images
//! of tag automata.  This crate is the arithmetic substrate of that
//! reduction:
//!
//! * [`rational`] — exact rational arithmetic over checked `i128`,
//! * [`term`] — integer variables and linear expressions,
//! * [`formula`] — quantifier-free and ∀/∃-quantified LIA formulas with
//!   evaluation, substitution and normal forms,
//! * [`simplex`] — the **incremental Dutertre–de Moura simplex**: a
//!   persistent, backtrackable tableau ([`simplex::IncrementalSimplex`])
//!   with one-time atom registration, O(1) bound assertions, warm-started
//!   pivoting and Farkas-style infeasibility cores (one-shot and
//!   prefix-sharing session wrappers included),
//! * [`intfeas`] — integer feasibility by branch-and-bound on one
//!   push/pop tableau, pruned per node by incremental interval
//!   propagation and the divisibility test, with sound resource limits,
//! * [`bounds`] — interval (bound) propagation with integer rounding, the
//!   cheap propagation layer of both search engines,
//! * [`cnf`] — clausification for the CDCL engine: structural hashing,
//!   Plaisted–Greenbaum Tseitin encoding, half-space atom canonicalisation,
//! * [`cdcl`] — the clause-learning **CDCL(T)** search engine (trail,
//!   two-watched-literal propagation, 1UIP learning, backjumping, Luby
//!   restarts, VSIDS), the default engine of [`solver::Solver`]; the
//!   theory side is equally incremental — **theory propagation** with
//!   lazy explanations and the persistent simplex asserted in lock-step
//!   with the trail — and the engine is persistent, exporting cumulative
//!   [`cdcl::SolverStats`],
//! * [`incremental`] — the **incremental solving layer**: persistent
//!   [`incremental::IncrementalSolver`] sessions with an assertion stack
//!   (`push`/`pop` via selector-guarded frames), assumption solving, and
//!   learned-clause retention across calls — what the CEGAR loops and the
//!   SMT-LIB `(check-sat)` streams run on,
//! * [`explain`] / [`eqelim`] — theory-conflict *explanations*: provenance-
//!   tracking bound propagation, deletion-minimised cores, and the
//!   GCD/elimination refutation of parity-infeasible equality systems,
//! * [`solver`] — the public satisfiability API for quantifier-free LIA
//!   formulas with arbitrary Boolean structure (the stand-in for the LIA
//!   backend of Z3 used by Z3-Noodler in the paper's implementation); the
//!   [`solver::SearchEngine`] knob selects CDCL(T) (default) or the legacy
//!   recursive structural DPLL(T) walk kept as a differential oracle.
//!
//! # The explanation interface
//!
//! The CDCL(T) loop asks the theory three questions, each answered with a
//! *core* — indices of a (small, ideally minimal) jointly-infeasible subset
//! of the asserted constraints — which the engine negates into a learned
//! clause:
//!
//! 1. is the asserted conjunction bound-consistent?
//!    ([`bounds::BoundEnv`]; cores from [`explain::bound_conflict_core`]),
//! 2. does the equality subsystem admit integer solutions?
//!    ([`eqelim::conflict_core_fixed`], after substituting bound-pinned
//!    variables),
//! 3. is it rationally feasible / integer feasible at a leaf?
//!    ([`simplex::check_feasibility_with_core`] Farkas certificates;
//!    [`intfeas::solve_integer`] refutations minimised by deletion under a
//!    node budget).
//!
//! # Example
//!
//! ```
//! use posr_lia::formula::Formula;
//! use posr_lia::term::{LinExpr, VarPool};
//! use posr_lia::solver::{Solver, SolverResult};
//!
//! let mut pool = VarPool::new();
//! let x = pool.fresh("x");
//! let y = pool.fresh("y");
//! // x + y = 5  ∧  x ≥ 2  ∧  y ≥ 2
//! let phi = Formula::and(vec![
//!     Formula::eq(LinExpr::var(x) + LinExpr::var(y), LinExpr::constant(5)),
//!     Formula::ge(LinExpr::var(x), LinExpr::constant(2)),
//!     Formula::ge(LinExpr::var(y), LinExpr::constant(2)),
//! ]);
//! let result = Solver::new().solve(&phi);
//! match result {
//!     SolverResult::Sat(model) => {
//!         assert_eq!(model.value(x) + model.value(y), 5);
//!     }
//!     _ => panic!("expected sat"),
//! }
//! ```

pub mod bigint;
pub mod bounds;
pub mod cancel;
pub mod cdcl;
pub mod cnf;
pub mod eqelim;
pub mod explain;
pub mod formula;
pub mod incremental;
pub mod intfeas;
pub mod proof;
pub mod rational;
pub mod simplex;
pub mod solver;
pub mod term;

pub use cancel::CancelToken;
pub use cdcl::{global_stats, SolverStats};
pub use cnf::{Lit, LitOrConst};
pub use formula::{Atom, Cmp, Formula};
pub use incremental::IncrementalSolver;
pub use proof::{CertKind, ProofBuilder, ProofStep};
pub use rational::{catch_overflow, Rat, OVERFLOW_MSG, OVERFLOW_UNKNOWN};
pub use solver::{Model, SearchEngine, Solver, SolverConfig, SolverResult};
pub use term::{LinExpr, Var, VarPool};
