//! Clausification of quantifier-free LIA formulas for the CDCL(T) engine.
//!
//! The clausifier turns a negation-normal-form [`Formula`] into an
//! atom-indexed clause database:
//!
//! * **Atoms are canonicalised to half-spaces.**  Every comparison is
//!   rewritten over the integers into the single shape `e ≤ 0`:
//!   `e < 0 ⟺ e + 1 ≤ 0`, `e ≥ 0 ⟺ −e ≤ 0`, `e > 0 ⟺ 1 − e ≤ 0`.
//!   Equalities split conjunctively (`e = 0 ⟺ e ≤ 0 ∧ −e ≤ 0`) and
//!   disequalities disjunctively (`e ≠ 0 ⟺ e + 1 ≤ 0 ∨ 1 − e ≤ 0`), so
//!   *both* polarities of every Boolean variable carry an exact theory
//!   meaning: literal `b` asserts `e ≤ 0`, literal `¬b` asserts `e ≥ 1`.
//!   The theory layer never sees a constraint it cannot represent.
//! * **Structural hashing.**  Atoms are interned by their canonical
//!   expression — including across complements (`e ≤ 0` and `1 − e ≤ 0`
//!   share one variable with opposite signs) — and Tseitin gates are
//!   interned by `(kind, children)`, so repeated subformulas (the per-pair
//!   mismatch disjuncts of the system encoding repeat whole blocks) define
//!   one auxiliary variable each.
//! * **Plaisted–Greenbaum polarity.**  The input is NNF, every subformula
//!   occurs positively, so each gate needs only the `gate → definition`
//!   direction: `g → (l₁ ∨ … ∨ lₙ)` for OR, `g → lᵢ` for AND.  This halves
//!   the clause count and keeps equisatisfiability (models restricted to the
//!   theory atoms are preserved, which is what the model reconstruction
//!   needs).
//!
//! Top-level conjunctive structure is clausified directly (no auxiliary
//! variables): conjuncts recurse, a disjunction of leaves becomes one
//! clause.

use std::collections::HashMap;

use crate::formula::{Atom, Cmp, Formula};
use crate::simplex::{Rel, SimplexConstraint};
use crate::term::LinExpr;

/// A Boolean variable of the clause database, a dense index.
pub type BoolVar = usize;

/// A literal: variable plus sign, packed as `var << 1 | negated`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit(pub u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn positive(var: BoolVar) -> Lit {
        Lit((var as u32) << 1)
    }

    /// The negative literal of `var`.
    pub fn negative(var: BoolVar) -> Lit {
        Lit(((var as u32) << 1) | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> BoolVar {
        (self.0 >> 1) as usize
    }

    /// `true` for positive literals.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    #[allow(clippy::should_implement_trait)] // `!lit` would shadow the packed repr
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index usable for watch lists (`2·var + sign`).
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

/// The clause database produced by clausification.
#[derive(Clone, Debug, Default)]
pub struct CnfFormula {
    /// Number of Boolean variables (theory atoms and Tseitin gates).
    pub num_vars: usize,
    /// The clauses; each is a non-tautological set of literals.
    pub clauses: Vec<Vec<Lit>>,
    /// Per Boolean variable: `Some(e)` iff the variable means `e ≤ 0`
    /// (`None` for Tseitin gate variables).
    pub theory: Vec<Option<LinExpr>>,
    /// The formula was constant-false (an empty clause was derived).
    pub unsat: bool,
}

/// The simplex constraint asserted by the literal of sign `positive` over a
/// variable whose meaning is `expr ≤ 0` (both polarities are exact over the
/// integers); `None` for gate variables (`meaning` absent).
pub(crate) fn constraint_of_meaning(
    meaning: Option<&LinExpr>,
    positive: bool,
) -> Option<SimplexConstraint> {
    let expr = meaning?;
    Some(if positive {
        SimplexConstraint {
            expr: expr.clone(),
            rel: Rel::Le,
        }
    } else {
        // ¬(e ≤ 0) ⟺ e ≥ 1 over the integers
        SimplexConstraint {
            expr: expr.clone() - LinExpr::constant(1),
            rel: Rel::Ge,
        }
    })
}

/// Splits an atom meaning `e ≤ 0` into `(f, k)` with `e = f + k` and `f`
/// constant-free — the key/offset pair of the engine's atom→bound registry:
/// atoms sharing `f` differ only in the threshold `k`, so one sorted list
/// per form answers "which atoms does the current interval of `f` entail?"
/// with two binary searches.
pub(crate) fn split_meaning(meaning: &LinExpr) -> (LinExpr, i128) {
    let k = meaning.constant_part();
    let mut form = LinExpr::zero();
    for (v, c) in meaning.terms() {
        form.add_term(v, c);
    }
    (form, k)
}

impl CnfFormula {
    /// The simplex constraint asserted by `lit` (both polarities are exact
    /// over the integers), or `None` for gate literals.
    pub fn constraint_of(&self, lit: Lit) -> Option<SimplexConstraint> {
        constraint_of_meaning(self.theory[lit.var()].as_ref(), lit.is_positive())
    }
}

/// A literal or a Boolean constant: the result of translating a subformula.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LitOrConst {
    /// The subformula is valid.
    True,
    /// The subformula is unsatisfiable.
    False,
    /// The subformula holds iff the literal does.
    Lit(Lit),
}

use LitOrConst as TLit;

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum GateKey {
    And(Vec<Lit>),
    Or(Vec<Lit>),
}

/// The clausifier: interns atoms and gates, accumulates clauses.
///
/// Besides the one-shot [`Clausifier::clausify`], the clausifier supports
/// *incremental* use by [`crate::incremental::IncrementalSolver`]: the
/// atom/gate interning tables persist across calls, and the clauses produced
/// since the last drain are split into **definition clauses** (Tseitin gate
/// definitions `g → …`, globally valid implications that must survive
/// assertion-stack pops) and **assertion clauses** (the clauses that actually
/// constrain the formula, which an incremental caller may guard with a
/// selector literal to make them retractable).
#[derive(Default)]
pub struct Clausifier {
    atoms: HashMap<LinExpr, BoolVar>,
    gates: HashMap<GateKey, Lit>,
    /// Gates with *biconditional* definitions, used by
    /// [`Clausifier::literal_of_nnf`]: a literal handed out for assumption
    /// solving may be assumed in either polarity, so `¬g` must force the
    /// definition false — the one-sided Plaisted–Greenbaum gates above
    /// only support the positive direction.
    full_gates: HashMap<GateKey, Lit>,
    theory: Vec<Option<LinExpr>>,
    /// Gate-definition clauses produced since the last drain.
    definitions: Vec<Vec<Lit>>,
    /// Assertion clauses produced since the last drain.
    clauses: Vec<Vec<Lit>>,
    unsat: bool,
}

impl Clausifier {
    /// Creates an empty clausifier.
    pub fn new() -> Clausifier {
        Clausifier::default()
    }

    /// Clausifies a quantifier-free NNF formula into a clause database.
    ///
    /// # Panics
    /// Panics on quantifiers or on `Not` applied to a non-atom (both are
    /// removed by [`Formula::nnf`], which callers must run first).
    pub fn clausify(formula: &Formula) -> CnfFormula {
        let mut c = Clausifier::new();
        c.assert_formula(formula);
        let mut clauses = c.definitions;
        clauses.extend(c.clauses);
        CnfFormula {
            num_vars: c.theory.len(),
            clauses,
            theory: c.theory,
            unsat: c.unsat,
        }
    }

    /// The number of Boolean variables interned so far.
    pub fn num_vars(&self) -> usize {
        self.theory.len()
    }

    /// The theory meaning of every Boolean variable (`Some(e)` iff the
    /// variable asserts `e ≤ 0`; `None` for gates and selectors).
    pub fn theory(&self) -> &[Option<LinExpr>] {
        &self.theory
    }

    /// Asserts a quantifier-free **NNF** formula; the produced clauses are
    /// collected until [`Clausifier::take_new_assertions`] /
    /// [`Clausifier::take_new_definitions`] drain them.
    ///
    /// # Panics
    /// Panics on quantifiers or on `Not` applied to a non-atom.
    pub fn assert_nnf(&mut self, formula: &Formula) {
        self.assert_formula(formula);
    }

    /// Translates a quantifier-free **NNF** formula into a literal (creating
    /// gate definitions as needed) without asserting it — the handle used
    /// for assumption solving.  The gates created here are **biconditional**
    /// (full Tseitin, not Plaisted–Greenbaum): the returned literal is exact
    /// in *both* polarities, so assuming its negation genuinely forces the
    /// formula false.
    pub fn literal_of_nnf(&mut self, formula: &Formula) -> LitOrConst {
        self.translate_full(formula)
    }

    /// Drains the gate-definition clauses produced since the last drain.
    pub fn take_new_definitions(&mut self) -> Vec<Vec<Lit>> {
        std::mem::take(&mut self.definitions)
    }

    /// Drains the assertion clauses produced since the last drain.
    pub fn take_new_assertions(&mut self) -> Vec<Vec<Lit>> {
        std::mem::take(&mut self.clauses)
    }

    /// Reads *and resets* the empty-clause flag: `true` when an assertion
    /// since the last call was constant-false.  Incremental callers scope
    /// the contradiction to the assertion frame that produced it.
    pub fn take_unsat(&mut self) -> bool {
        std::mem::replace(&mut self.unsat, false)
    }

    /// A fresh Boolean variable with no theory meaning — the selector
    /// variables of the incremental assertion stack.
    pub fn fresh_selector(&mut self) -> BoolVar {
        self.fresh_var(None)
    }

    fn fresh_var(&mut self, meaning: Option<LinExpr>) -> BoolVar {
        let var = self.theory.len();
        self.theory.push(meaning);
        var
    }

    /// The literal meaning `e ≤ 0`, interning across complements: if `1 − e`
    /// is already an atom, `e ≤ 0 ⟺ ¬(1 − e ≤ 0)` (their conjunction is
    /// `e ≤ 0 ∧ e ≥ 1`, empty over ℤ, and their disjunction is full).
    fn lit_of_le(&mut self, expr: LinExpr) -> TLit {
        if expr.is_constant() {
            return if expr.constant_part() <= 0 {
                TLit::True
            } else {
                TLit::False
            };
        }
        if let Some(&var) = self.atoms.get(&expr) {
            return TLit::Lit(Lit::positive(var));
        }
        let complement = LinExpr::constant(1) - expr.clone();
        if let Some(&var) = self.atoms.get(&complement) {
            return TLit::Lit(Lit::negative(var));
        }
        let var = self.fresh_var(Some(expr.clone()));
        self.atoms.insert(expr, var);
        TLit::Lit(Lit::positive(var))
    }

    /// The literal of an inequality atom (`Eq`/`Ne` are handled structurally
    /// by the callers).
    fn lit_of_ineq(&mut self, atom: &Atom) -> TLit {
        let e = atom.expr.clone();
        match atom.cmp {
            Cmp::Le => self.lit_of_le(e),
            Cmp::Lt => self.lit_of_le(e + LinExpr::constant(1)),
            Cmp::Ge => self.lit_of_le(LinExpr::zero() - e),
            Cmp::Gt => self.lit_of_le(LinExpr::constant(1) - e),
            Cmp::Eq | Cmp::Ne => unreachable!("equalities are split before lit_of_ineq"),
        }
    }

    /// Normalises a literal set for a gate or clause: drops duplicates,
    /// detects complementary pairs (tautology).  Returns `None` for a
    /// tautology.
    fn normalise(mut lits: Vec<Lit>) -> Option<Vec<Lit>> {
        lits.sort_unstable();
        lits.dedup();
        for pair in lits.windows(2) {
            if pair[0].var() == pair[1].var() {
                return None; // l and ¬l
            }
        }
        Some(lits)
    }

    /// An interned AND gate over `lits` with Plaisted–Greenbaum clauses
    /// `g → lᵢ`.
    fn gate_and(&mut self, lits: Vec<Lit>) -> TLit {
        let Some(lits) = Self::normalise(lits) else {
            return TLit::False; // l ∧ ¬l
        };
        match lits.len() {
            0 => return TLit::True,
            1 => return TLit::Lit(lits[0]),
            _ => {}
        }
        let key = GateKey::And(lits.clone());
        if let Some(&g) = self.gates.get(&key) {
            return TLit::Lit(g);
        }
        let g = Lit::positive(self.fresh_var(None));
        for &l in &lits {
            self.definitions.push(vec![g.negate(), l]);
        }
        self.gates.insert(key, g);
        TLit::Lit(g)
    }

    /// An interned OR gate over `lits` with the Plaisted–Greenbaum clause
    /// `g → (l₁ ∨ … ∨ lₙ)`.
    fn gate_or(&mut self, lits: Vec<Lit>) -> TLit {
        let Some(lits) = Self::normalise(lits) else {
            return TLit::True; // l ∨ ¬l
        };
        match lits.len() {
            0 => return TLit::False,
            1 => return TLit::Lit(lits[0]),
            _ => {}
        }
        let key = GateKey::Or(lits.clone());
        if let Some(&g) = self.gates.get(&key) {
            return TLit::Lit(g);
        }
        let g = Lit::positive(self.fresh_var(None));
        let mut clause = Vec::with_capacity(lits.len() + 1);
        clause.push(g.negate());
        clause.extend(lits.iter().copied());
        self.definitions.push(clause);
        self.gates.insert(key, g);
        TLit::Lit(g)
    }

    /// An interned **biconditional** AND gate: `g → lᵢ` plus
    /// `(l₁ ∧ … ∧ lₙ) → g`.
    fn full_gate_and(&mut self, lits: Vec<Lit>) -> TLit {
        let Some(lits) = Self::normalise(lits) else {
            return TLit::False; // l ∧ ¬l
        };
        match lits.len() {
            0 => return TLit::True,
            1 => return TLit::Lit(lits[0]),
            _ => {}
        }
        let key = GateKey::And(lits.clone());
        if let Some(&g) = self.full_gates.get(&key) {
            return TLit::Lit(g);
        }
        let g = Lit::positive(self.fresh_var(None));
        for &l in &lits {
            self.definitions.push(vec![g.negate(), l]);
        }
        let mut reverse = Vec::with_capacity(lits.len() + 1);
        reverse.push(g);
        reverse.extend(lits.iter().map(|l| l.negate()));
        self.definitions.push(reverse);
        self.full_gates.insert(key, g);
        TLit::Lit(g)
    }

    /// An interned **biconditional** OR gate: `g → (l₁ ∨ … ∨ lₙ)` plus
    /// `lᵢ → g`.
    fn full_gate_or(&mut self, lits: Vec<Lit>) -> TLit {
        let Some(lits) = Self::normalise(lits) else {
            return TLit::True; // l ∨ ¬l
        };
        match lits.len() {
            0 => return TLit::False,
            1 => return TLit::Lit(lits[0]),
            _ => {}
        }
        let key = GateKey::Or(lits.clone());
        if let Some(&g) = self.full_gates.get(&key) {
            return TLit::Lit(g);
        }
        let g = Lit::positive(self.fresh_var(None));
        let mut forward = Vec::with_capacity(lits.len() + 1);
        forward.push(g.negate());
        forward.extend(lits.iter().copied());
        self.definitions.push(forward);
        for &l in &lits {
            self.definitions.push(vec![l.negate(), g]);
        }
        self.full_gates.insert(key, g);
        TLit::Lit(g)
    }

    /// [`Clausifier::translate`] with biconditional gates throughout, so
    /// the resulting literal is exact in both polarities (see
    /// [`Clausifier::literal_of_nnf`]).  Atoms are shared with the
    /// one-sided path — they are exact in both polarities already.
    fn translate_full(&mut self, formula: &Formula) -> TLit {
        match formula {
            Formula::True => TLit::True,
            Formula::False => TLit::False,
            Formula::Atom(atom) => match atom.cmp {
                Cmp::Eq => {
                    let le = self.lit_of_ineq(&Atom {
                        expr: atom.expr.clone(),
                        cmp: Cmp::Le,
                    });
                    let ge = self.lit_of_ineq(&Atom {
                        expr: atom.expr.clone(),
                        cmp: Cmp::Ge,
                    });
                    self.combine_full(true, vec![le, ge])
                }
                Cmp::Ne => {
                    let lt = self.lit_of_ineq(&Atom {
                        expr: atom.expr.clone(),
                        cmp: Cmp::Lt,
                    });
                    let gt = self.lit_of_ineq(&Atom {
                        expr: atom.expr.clone(),
                        cmp: Cmp::Gt,
                    });
                    self.combine_full(false, vec![lt, gt])
                }
                _ => self.lit_of_ineq(atom),
            },
            Formula::And(parts) => {
                let translated: Vec<TLit> = parts.iter().map(|p| self.translate_full(p)).collect();
                self.combine_full(true, translated)
            }
            Formula::Or(parts) => {
                let translated: Vec<TLit> = parts.iter().map(|p| self.translate_full(p)).collect();
                self.combine_full(false, translated)
            }
            Formula::Not(_) => unreachable!("clausifier input must be in NNF"),
            Formula::Forall(_, _) | Formula::Exists(_, _) => {
                unreachable!("clausifier input must be quantifier-free")
            }
        }
    }

    /// Folds constants and dispatches to the biconditional gates.
    fn combine_full(&mut self, conjunction: bool, parts: Vec<TLit>) -> TLit {
        let mut lits = Vec::with_capacity(parts.len());
        for p in parts {
            match (conjunction, p) {
                (true, TLit::True) | (false, TLit::False) => {}
                (true, TLit::False) => return TLit::False,
                (false, TLit::True) => return TLit::True,
                (_, TLit::Lit(l)) => lits.push(l),
            }
        }
        if conjunction {
            self.full_gate_and(lits)
        } else {
            self.full_gate_or(lits)
        }
    }

    /// Translates a subformula occurring under a disjunction into a literal.
    fn translate(&mut self, formula: &Formula) -> TLit {
        match formula {
            Formula::True => TLit::True,
            Formula::False => TLit::False,
            Formula::Atom(atom) => match atom.cmp {
                Cmp::Eq => {
                    let le = self.lit_of_ineq(&Atom {
                        expr: atom.expr.clone(),
                        cmp: Cmp::Le,
                    });
                    let ge = self.lit_of_ineq(&Atom {
                        expr: atom.expr.clone(),
                        cmp: Cmp::Ge,
                    });
                    self.combine_and(vec![le, ge])
                }
                Cmp::Ne => {
                    let lt = self.lit_of_ineq(&Atom {
                        expr: atom.expr.clone(),
                        cmp: Cmp::Lt,
                    });
                    let gt = self.lit_of_ineq(&Atom {
                        expr: atom.expr.clone(),
                        cmp: Cmp::Gt,
                    });
                    self.combine_or(vec![lt, gt])
                }
                _ => self.lit_of_ineq(atom),
            },
            Formula::And(parts) => {
                let translated: Vec<TLit> = parts.iter().map(|p| self.translate(p)).collect();
                self.combine_and(translated)
            }
            Formula::Or(parts) => {
                let translated: Vec<TLit> = parts.iter().map(|p| self.translate(p)).collect();
                self.combine_or(translated)
            }
            Formula::Not(_) => unreachable!("clausifier input must be in NNF"),
            Formula::Forall(_, _) | Formula::Exists(_, _) => {
                unreachable!("clausifier input must be quantifier-free")
            }
        }
    }

    fn combine_and(&mut self, parts: Vec<TLit>) -> TLit {
        let mut lits = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                TLit::True => {}
                TLit::False => return TLit::False,
                TLit::Lit(l) => lits.push(l),
            }
        }
        self.gate_and(lits)
    }

    fn combine_or(&mut self, parts: Vec<TLit>) -> TLit {
        let mut lits = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                TLit::False => {}
                TLit::True => return TLit::True,
                TLit::Lit(l) => lits.push(l),
            }
        }
        self.gate_or(lits)
    }

    /// Asserts a top-level formula: conjunctions recurse (no gate variable),
    /// everything else becomes clauses directly.
    fn assert_formula(&mut self, formula: &Formula) {
        match formula {
            Formula::True => {}
            Formula::False => self.unsat = true,
            Formula::And(parts) => {
                for p in parts {
                    self.assert_formula(p);
                }
            }
            Formula::Atom(atom) if atom.cmp == Cmp::Eq => {
                // top-level equality: two unit clauses, no gate
                let expr = atom.expr.clone();
                self.assert_formula(&Formula::Atom(Atom {
                    expr: expr.clone(),
                    cmp: Cmp::Le,
                }));
                self.assert_formula(&Formula::Atom(Atom { expr, cmp: Cmp::Ge }));
            }
            Formula::Or(parts) => {
                // top-level disjunction: one clause, no OR gate variable
                let mut lits = Vec::with_capacity(parts.len());
                for p in parts {
                    match self.translate(p) {
                        TLit::True => return,
                        TLit::False => {}
                        TLit::Lit(l) => lits.push(l),
                    }
                }
                match Self::normalise(lits) {
                    None => {} // tautology
                    Some(lits) if lits.is_empty() => self.unsat = true,
                    Some(lits) => self.clauses.push(lits),
                }
            }
            other => match self.translate(other) {
                TLit::True => {}
                TLit::False => self.unsat = true,
                TLit::Lit(l) => self.clauses.push(vec![l]),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarPool;

    fn clausify(f: &Formula) -> CnfFormula {
        Clausifier::clausify(&f.nnf().simplify())
    }

    #[test]
    fn literal_packing_roundtrips() {
        let p = Lit::positive(7);
        let n = Lit::negative(7);
        assert_eq!(p.var(), 7);
        assert_eq!(n.var(), 7);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(p.negate(), n);
        assert_eq!(n.negate(), p);
        assert_eq!(p.code(), 14);
        assert_eq!(n.code(), 15);
    }

    #[test]
    fn conjunction_of_atoms_becomes_unit_clauses() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let f = Formula::and(vec![
            Formula::le(LinExpr::var(x), LinExpr::constant(3)),
            Formula::ge(LinExpr::var(x), LinExpr::constant(1)),
        ]);
        let cnf = clausify(&f);
        assert!(!cnf.unsat);
        assert_eq!(cnf.clauses.len(), 2);
        assert!(cnf.clauses.iter().all(|c| c.len() == 1));
        // both atoms are theory atoms
        for clause in &cnf.clauses {
            assert!(cnf.constraint_of(clause[0]).is_some());
        }
    }

    #[test]
    fn equality_splits_into_two_half_spaces() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let f = Formula::eq(LinExpr::var(x), LinExpr::constant(5));
        let cnf = clausify(&f);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.num_vars, 2);
    }

    #[test]
    fn complementary_atoms_share_one_variable() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        // x ≤ 0 and x > 0 are complements: one Boolean variable, two signs
        let f = Formula::or(vec![
            Formula::and(vec![
                Formula::le(LinExpr::var(x), LinExpr::constant(0)),
                Formula::ge(LinExpr::var(x), LinExpr::constant(-5)),
            ]),
            Formula::gt(LinExpr::var(x), LinExpr::constant(0)),
        ]);
        let cnf = clausify(&f);
        let theory_vars = cnf.theory.iter().filter(|t| t.is_some()).count();
        assert_eq!(theory_vars, 2, "x≤0 / x>0 must intern to one variable");
    }

    #[test]
    fn structural_hashing_dedupes_repeated_gates() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let block = Formula::and(vec![
            Formula::ge(LinExpr::var(x), LinExpr::constant(1)),
            Formula::le(LinExpr::var(y), LinExpr::constant(2)),
        ]);
        let f = Formula::And(vec![
            Formula::Or(vec![
                block.clone(),
                Formula::ge(LinExpr::var(y), LinExpr::constant(9)),
            ]),
            Formula::Or(vec![
                block,
                Formula::le(LinExpr::var(x), LinExpr::constant(-3)),
            ]),
        ]);
        let cnf = clausify(&f);
        // one AND gate for the shared block: 4 theory atoms + 1 gate
        let gate_vars = cnf.theory.iter().filter(|t| t.is_none()).count();
        assert_eq!(gate_vars, 1);
    }

    #[test]
    fn constant_subformulas_fold_away() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let f = Formula::Or(vec![
            Formula::lt(LinExpr::constant(1), LinExpr::constant(0)),
            Formula::eq(LinExpr::var(x), LinExpr::constant(2)),
        ]);
        let cnf = clausify(&f);
        assert!(!cnf.unsat);
        // the false disjunct vanishes; the equality asserts two units through
        // an AND gate or directly
        assert!(!cnf.clauses.is_empty());
        let f_false = Formula::and(vec![Formula::lt(
            LinExpr::constant(1),
            LinExpr::constant(0),
        )]);
        assert!(clausify(&f_false).unsat);
    }

    #[test]
    fn negative_literal_constraint_is_the_integer_complement() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let f = Formula::le(LinExpr::var(x), LinExpr::constant(0));
        let cnf = clausify(&f);
        let lit = cnf.clauses[0][0];
        let pos = cnf.constraint_of(lit).unwrap();
        assert_eq!(pos.rel, Rel::Le);
        let neg = cnf.constraint_of(lit.negate()).unwrap();
        assert_eq!(neg.rel, Rel::Ge);
        // pos: x ≤ 0; neg: x − 1 ≥ 0, i.e. x ≥ 1 — exact complements over ℤ
        assert_eq!(neg.expr.constant_part(), pos.expr.constant_part() - 1);
    }

    #[test]
    fn tautological_clauses_are_dropped() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        // x ≤ 0 ∨ x > 0 is a tautology over the shared variable
        let f = Formula::Or(vec![
            Formula::le(LinExpr::var(x), LinExpr::constant(0)),
            Formula::gt(LinExpr::var(x), LinExpr::constant(0)),
        ]);
        let cnf = clausify(&f);
        assert!(!cnf.unsat);
        assert!(cnf.clauses.is_empty());
    }
}
