//! Incremental LIA solving: persistent CDCL(T) sessions with an assertion
//! stack, assumption solving, and clause retention across calls.
//!
//! A one-shot [`crate::solver::Solver`] re-clausifies and re-searches from
//! scratch on every query.  Iterative-refinement callers — the
//! connectivity-cut loop of the tag-automaton encodings, the `¬contains`
//! CEGAR loop, multi-`(check-sat)` SMT-LIB scripts — solve long chains of
//! *almost identical* formulas, each extending the previous one by a cut or
//! a blocking clause.  An [`IncrementalSolver`] keeps everything those
//! re-solves would otherwise rebuild:
//!
//! * the **clausifier state** (atom and gate interning) survives, so a new
//!   increment only clausifies what is genuinely new;
//! * the **clause database** persists — including **learned clauses**, so
//!   conflicts derived in round *n* keep pruning the search in round *n+1*;
//! * **VSIDS activities and saved phases** persist, so the search resumes
//!   where the previous one left off instead of re-warming from nothing;
//! * the **theory state** persists too: the engine's incremental simplex
//!   ([`crate::simplex::IncrementalSimplex`]) keeps its registered atoms,
//!   slack rows and warm basis across solves — root-level theory literals
//!   stay asserted between calls, so a re-solve's leaf checks start from
//!   the previous solution instead of an empty tableau;
//! * an LBD-ranked learned-clause GC keeps unbounded sessions bounded.
//!
//! # Assertion stack
//!
//! [`IncrementalSolver::push`] opens a frame guarded by a fresh *selector*
//! variable `s`: every assertion clause of the frame is extended with `¬s`,
//! and [`IncrementalSolver::solve`] assumes `s` for each live frame.
//! [`IncrementalSolver::pop`] retracts the frame by fixing `¬s` at the
//! root, which permanently satisfies (and lets the GC reclaim) the frame's
//! clauses.  The clause-retention semantics come for free from resolution:
//! a learned clause that resolved against a frame's clauses contains the
//! frame's `¬s` literal, so after the pop it is vacuously true — only
//! lemmas depending exclusively on surviving frames remain active.
//! Tseitin *gate definitions* are globally valid implications (`g → …`)
//! and are deliberately left unguarded: interning may resurrect a gate in
//! a later frame, and its definition must still be in force.
//!
//! # Example
//!
//! ```
//! use posr_lia::formula::Formula;
//! use posr_lia::incremental::IncrementalSolver;
//! use posr_lia::term::{LinExpr, VarPool};
//!
//! let mut pool = VarPool::new();
//! let x = pool.fresh("x");
//! let mut solver = IncrementalSolver::new();
//! solver.assert_formula(&Formula::ge(LinExpr::var(x), LinExpr::constant(0)));
//! assert!(solver.solve().is_sat());
//! solver.push();
//! solver.assert_formula(&Formula::le(LinExpr::var(x), LinExpr::constant(-1)));
//! assert!(solver.solve().is_unsat());
//! solver.pop();
//! assert!(solver.solve().is_sat());
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::cdcl::{Engine, SolverStats};
use crate::cnf::{BoolVar, Clausifier, Lit, LitOrConst};
use crate::formula::Formula;
use crate::rational::OVERFLOW_MSG;
use crate::solver::{SolverConfig, SolverResult};

/// A persistent CDCL(T) session over a growing formula.
pub struct IncrementalSolver {
    clausifier: Clausifier,
    engine: Engine,
    /// Selector variable of every open assertion frame, oldest first.
    frames: Vec<BoolVar>,
    /// A quantified formula was asserted: everything after that is outside
    /// the decidable fragment, every solve answers `Unknown`.
    saw_quantifier: bool,
    /// A theory panic (arithmetic overflow) unwound mid-search; the engine
    /// state is unusable and every further solve answers `Unknown`.
    poisoned: bool,
}

impl Default for IncrementalSolver {
    fn default() -> IncrementalSolver {
        IncrementalSolver::new()
    }
}

impl IncrementalSolver {
    /// A session with the default configuration.
    pub fn new() -> IncrementalSolver {
        IncrementalSolver::with_config(SolverConfig::default())
    }

    /// A session with an explicit configuration (cancellation token,
    /// conflict budget, learned-clause cap, …).
    pub fn with_config(config: SolverConfig) -> IncrementalSolver {
        IncrementalSolver {
            clausifier: Clausifier::new(),
            engine: Engine::empty(config),
            frames: Vec::new(),
            saw_quantifier: false,
            poisoned: false,
        }
    }

    /// The number of open assertion frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Conjoins `formula` at the current assertion level: clausified
    /// incrementally into the live database (interning reused), guarded by
    /// the current frame's selector so a later [`IncrementalSolver::pop`]
    /// retracts exactly this increment.
    pub fn assert_formula(&mut self, formula: &Formula) {
        if !formula.is_quantifier_free() {
            self.saw_quantifier = true;
            return;
        }
        let nnf = formula.nnf().simplify();
        self.clausifier.assert_nnf(&nnf);
        self.sync_clauses();
    }

    /// Opens a new assertion frame.
    pub fn push(&mut self) {
        let selector = self.clausifier.fresh_selector();
        self.engine.grow_theory(self.clausifier.theory());
        self.frames.push(selector);
    }

    /// Retracts the most recent frame; `false` when no frame is open.
    /// Learned clauses that depend only on surviving frames stay active;
    /// the retracted frame's clauses (and the lemmas resolved against
    /// them) become vacuously true and are reclaimed by the next GC pass.
    pub fn pop(&mut self) -> bool {
        match self.frames.pop() {
            Some(selector) => {
                self.engine.add_root_clause(vec![Lit::negative(selector)]);
                true
            }
            None => false,
        }
    }

    /// The literal form of a formula — the handle for
    /// [`IncrementalSolver::solve_under_assumptions`].  Gate definitions
    /// created on the way are added to the database (they constrain
    /// nothing until the literal is assumed or asserted).
    pub fn literal(&mut self, formula: &Formula) -> LitOrConst {
        if !formula.is_quantifier_free() {
            self.saw_quantifier = true;
            return LitOrConst::False;
        }
        let nnf = formula.nnf().simplify();
        let lit = self.clausifier.literal_of_nnf(&nnf);
        self.sync_clauses();
        lit
    }

    /// Decides the conjunction of every live assertion.
    pub fn solve(&mut self) -> SolverResult {
        self.solve_under_assumptions(&[])
    }

    /// Decides the live assertions under additional assumption literals
    /// (see [`IncrementalSolver::literal`]); `Unsat` means *unsat under
    /// the assumptions* and retracts nothing.
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit]) -> SolverResult {
        if self.saw_quantifier {
            return SolverResult::Unknown("formula contains quantifiers".to_string());
        }
        if self.poisoned {
            return SolverResult::Unknown("arithmetic overflow in theory solver".to_string());
        }
        let mut all: Vec<Lit> = self.frames.iter().map(|&s| Lit::positive(s)).collect();
        all.extend_from_slice(assumptions);
        let engine = &mut self.engine;
        let result = catch_unwind(AssertUnwindSafe(|| engine.solve(&all)));
        match result {
            Ok(r) => r,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("panic");
                if msg.contains(OVERFLOW_MSG) {
                    // the unwind left trail/environment in an arbitrary
                    // state: refuse to reuse the session
                    self.poisoned = true;
                    SolverResult::Unknown("arithmetic overflow in theory solver".to_string())
                } else {
                    // re-raise unrelated panics: they indicate bugs, not
                    // resource limits
                    std::panic::panic_any(msg.to_string())
                }
            }
        }
    }

    /// Cumulative engine counters for the whole session (conflicts,
    /// decisions, propagations, restarts, learned-clause totals and the
    /// live learned-clause gauge).
    pub fn stats(&self) -> SolverStats {
        self.engine.stats()
    }

    /// The unsat core of the last `Unsat` answer: the subset of the
    /// *caller's* assumption literals the refutation depends on (frame
    /// selectors are filtered out — a core that is empty even though
    /// assumptions were passed means the live assertions alone are
    /// unsatisfiable).  `None` unless the last solve answered `Unsat`.
    pub fn last_unsat_core(&self) -> Option<Vec<Lit>> {
        let core = self.engine.last_core()?;
        let selectors: std::collections::HashSet<BoolVar> = self.frames.iter().copied().collect();
        Some(
            core.iter()
                .copied()
                .filter(|l| !selectors.contains(&l.var()))
                .collect(),
        )
    }

    /// The proof log serialized in the `posr-proof` text format, when the
    /// session was created with `SolverConfig::proof_logging` on.  The
    /// document covers every query of the session; each `Unsat` answer is
    /// sealed with a `final` step `posr-check` can replay.
    pub fn proof(&self) -> Option<String> {
        self.engine.proof().map(|p| p.serialize())
    }

    /// `false` when the engine took a step it cannot certify (bounded
    /// explanation fall-backs, resource-out blocking clauses): the dumped
    /// proof would be rejected by the checker.  `true` when logging is on
    /// and every step so far is replayable.
    pub fn proof_is_complete(&self) -> bool {
        self.engine.proof().is_some_and(|p| p.is_complete())
    }

    /// Pulls the clauses produced by the clausifier since the last sync
    /// into the engine: gate definitions unguarded, assertion clauses
    /// guarded by the current frame's selector.
    fn sync_clauses(&mut self) {
        self.engine.grow_theory(self.clausifier.theory());
        for definition in self.clausifier.take_new_definitions() {
            self.engine.add_root_clause(definition);
        }
        let unsat = self.clausifier.take_unsat();
        let assertions = self.clausifier.take_new_assertions();
        match self.frames.last() {
            None => {
                for clause in assertions {
                    self.engine.add_root_clause(clause);
                }
                if unsat {
                    self.engine.add_root_clause(Vec::new());
                }
            }
            Some(&selector) => {
                let guard = Lit::negative(selector);
                for mut clause in assertions {
                    clause.push(guard);
                    self.engine.add_root_clause(clause);
                }
                if unsat {
                    // a constant-false assertion scoped to this frame
                    self.engine.add_root_clause(vec![guard]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{LinExpr, Var, VarPool};

    fn setup() -> (VarPool, Var, Var) {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        (pool, x, y)
    }

    #[test]
    fn incremental_assertions_accumulate() {
        let (_, x, y) = setup();
        let mut solver = IncrementalSolver::new();
        solver.assert_formula(&Formula::ge(LinExpr::var(x), LinExpr::constant(0)));
        assert!(solver.solve().is_sat());
        solver.assert_formula(&Formula::eq(
            LinExpr::var(x) + LinExpr::var(y),
            LinExpr::constant(3),
        ));
        match solver.solve() {
            SolverResult::Sat(m) => assert_eq!(m.value(x) + m.value(y), 3),
            other => panic!("expected sat, got {other:?}"),
        }
        solver.assert_formula(&Formula::le(LinExpr::var(x), LinExpr::constant(-1)));
        assert!(solver.solve().is_unsat());
        // the contradiction was asserted at the root: it is permanent
        assert!(solver.solve().is_unsat());
    }

    #[test]
    fn push_pop_restores_satisfiability() {
        let (_, x, _) = setup();
        let mut solver = IncrementalSolver::new();
        solver.assert_formula(&Formula::ge(LinExpr::var(x), LinExpr::constant(0)));
        solver.assert_formula(&Formula::le(LinExpr::var(x), LinExpr::constant(9)));
        assert!(solver.solve().is_sat());
        solver.push();
        solver.assert_formula(&Formula::ge(LinExpr::var(x), LinExpr::constant(10)));
        assert!(solver.solve().is_unsat());
        assert!(solver.pop());
        assert!(solver.solve().is_sat());
        assert!(!solver.pop(), "no frame left");
    }

    #[test]
    fn nested_frames_retract_in_order() {
        let (_, x, y) = setup();
        let mut solver = IncrementalSolver::new();
        solver.assert_formula(&Formula::ge(LinExpr::var(x), LinExpr::constant(0)));
        solver.push();
        solver.assert_formula(&Formula::le(LinExpr::var(x), LinExpr::constant(5)));
        solver.push();
        solver.assert_formula(&Formula::and(vec![
            Formula::ge(LinExpr::var(y), LinExpr::var(x)),
            Formula::ge(LinExpr::var(x), LinExpr::constant(6)),
        ]));
        assert!(solver.solve().is_unsat(), "x ≤ 5 ∧ x ≥ 6");
        assert!(solver.pop());
        assert!(solver.solve().is_sat(), "only x ∈ [0, 5] remains");
        assert!(solver.pop());
        solver.assert_formula(&Formula::ge(LinExpr::var(x), LinExpr::constant(100)));
        assert!(solver.solve().is_sat(), "upper bound was popped");
    }

    #[test]
    fn constant_false_assertion_is_scoped_to_its_frame() {
        let (_, x, _) = setup();
        let mut solver = IncrementalSolver::new();
        solver.assert_formula(&Formula::ge(LinExpr::var(x), LinExpr::constant(0)));
        solver.push();
        solver.assert_formula(&Formula::False);
        assert!(solver.solve().is_unsat());
        assert!(solver.pop());
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn assumption_literals_scope_without_frames() {
        let (_, x, _) = setup();
        let mut solver = IncrementalSolver::new();
        solver.assert_formula(&Formula::ge(LinExpr::var(x), LinExpr::constant(0)));
        solver.assert_formula(&Formula::le(LinExpr::var(x), LinExpr::constant(4)));
        let even_gap = solver.literal(&Formula::ge(LinExpr::var(x), LinExpr::constant(5)));
        let LitOrConst::Lit(gap) = even_gap else {
            panic!("expected a literal, got {even_gap:?}");
        };
        assert!(solver.solve_under_assumptions(&[gap]).is_unsat());
        assert!(solver.solve().is_sat());
        match solver.solve_under_assumptions(&[gap.negate()]) {
            SolverResult::Sat(m) => assert!(m.value(x) <= 4),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn disjunctive_assertions_share_interned_gates() {
        let (_, x, y) = setup();
        let block = Formula::or(vec![
            Formula::eq(LinExpr::var(x), LinExpr::constant(1)),
            Formula::eq(LinExpr::var(x), LinExpr::constant(2)),
        ]);
        let mut solver = IncrementalSolver::new();
        solver.push();
        solver.assert_formula(&block);
        assert!(solver.solve().is_sat());
        solver.pop();
        // re-asserting the same disjunction after the pop resurrects the
        // interned gates; their definitions must still be in force
        solver.push();
        solver.assert_formula(&block);
        solver.assert_formula(&Formula::eq(LinExpr::var(y), LinExpr::var(x)));
        match solver.solve() {
            SolverResult::Sat(m) => {
                assert!(m.value(x) == 1 || m.value(x) == 2, "x = {}", m.value(x));
                assert_eq!(m.value(x), m.value(y));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn learned_clauses_survive_new_assertions() {
        // an unsat-prone 0/1 system: the first solve learns clauses, a new
        // root assertion arrives, and the session keeps its lemmas
        let mut pool = VarPool::new();
        let vars: Vec<Var> = (0..6).map(|i| pool.fresh(&format!("v{i}"))).collect();
        let mut solver = IncrementalSolver::new();
        for &v in &vars {
            solver.assert_formula(&Formula::or(vec![
                Formula::eq(LinExpr::var(v), LinExpr::constant(0)),
                Formula::eq(LinExpr::var(v), LinExpr::constant(1)),
            ]));
        }
        solver.assert_formula(&Formula::ge(
            LinExpr::sum_of_vars(vars.iter().copied()),
            LinExpr::constant(5),
        ));
        assert!(solver.solve().is_sat());
        let learned_before = solver.stats().learned_live;
        solver.assert_formula(&Formula::le(
            LinExpr::sum_of_vars(vars.iter().copied()),
            LinExpr::constant(5),
        ));
        assert!(solver.solve().is_sat());
        assert!(
            solver.stats().learned_live >= learned_before,
            "lemmas must survive the new assertion: {} < {learned_before}",
            solver.stats().learned_live
        );
    }

    #[test]
    fn negated_composite_assumption_forces_the_formula_false() {
        // x ∈ [0, 2]; l ⟺ (x = 1 ∨ x = 2).  Assuming ¬l must force x = 0:
        // this needs the *biconditional* gate encoding of `literal` — with
        // one-sided Plaisted–Greenbaum gates the engine could answer Sat
        // with x = 2, a model satisfying the formula assumed false.
        let (_, x, _) = setup();
        let mut solver = IncrementalSolver::new();
        solver.assert_formula(&Formula::ge(LinExpr::var(x), LinExpr::constant(0)));
        solver.assert_formula(&Formula::le(LinExpr::var(x), LinExpr::constant(2)));
        let disjunction = Formula::or(vec![
            Formula::eq(LinExpr::var(x), LinExpr::constant(1)),
            Formula::eq(LinExpr::var(x), LinExpr::constant(2)),
        ]);
        let LitOrConst::Lit(l) = solver.literal(&disjunction) else {
            panic!("expected a literal");
        };
        match solver.solve_under_assumptions(&[l.negate()]) {
            SolverResult::Sat(m) => {
                assert!(
                    !m.satisfies(&disjunction),
                    "model satisfies the formula assumed false: x = {}",
                    m.value(x)
                );
                assert_eq!(m.value(x), 0);
            }
            other => panic!("expected sat with x = 0, got {other:?}"),
        }
        // positive polarity still works
        match solver.solve_under_assumptions(&[l]) {
            SolverResult::Sat(m) => assert!(m.satisfies(&disjunction)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn quantified_assertions_yield_unknown() {
        let (_, x, _) = setup();
        let mut solver = IncrementalSolver::new();
        solver.assert_formula(&Formula::forall(
            vec![x],
            Formula::ge(LinExpr::var(x), LinExpr::constant(0)),
        ));
        assert!(matches!(solver.solve(), SolverResult::Unknown(_)));
    }

    #[test]
    fn literal_of_constant_formulas() {
        let mut solver = IncrementalSolver::new();
        assert_eq!(solver.literal(&Formula::True), LitOrConst::True);
        assert_eq!(solver.literal(&Formula::False), LitOrConst::False);
    }
}
