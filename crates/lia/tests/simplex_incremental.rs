//! Randomized differential testing of the incremental theory layer.
//!
//! Two independent oracles guard the PR's two new mechanisms:
//!
//! 1. the **persistent tableau** ([`IncrementalSimplex`]) is driven
//!    through random `assert` / `push_level` / `pop_level` sequences and
//!    compared, after every step, against a from-scratch
//!    [`check_feasibility`] over the flattened live constraint set — the
//!    warm basis, the undo trail and the level bookkeeping must never
//!    change a verdict;
//! 2. the **theory-side config switches** are differential oracles by
//!    construction: every on/off combination of
//!    `SolverConfig::{theory_propagation, incremental_simplex,
//!    guided_propagation}` must agree on random formulas, and every
//!    `Sat` model must re-evaluate to true.
//!
//! Seeds are fixed xorshift states, so failures reproduce exactly.

use std::collections::BTreeMap;

use posr_lia::formula::{Cmp, Formula};
use posr_lia::rational::Rat;
use posr_lia::simplex::{
    check_feasibility, IncrementalSimplex, Rel, SimplexConstraint, SimplexResult,
};
use posr_lia::solver::{Solver, SolverConfig, SolverResult};
use posr_lia::term::{LinExpr, Var, VarPool};
use posr_lia::IncrementalSolver;

/// A tiny deterministic xorshift generator (same shape as
/// `tests/differential.rs`): no external crates, reproducible failures.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn int(&mut self, lo: i128, hi: i128) -> i128 {
        lo + self.below((hi - lo + 1) as u64) as i128
    }
}

fn random_constraint(rng: &mut Rng, vars: &[Var]) -> SimplexConstraint {
    let mut expr = LinExpr::constant(rng.int(-8, 8));
    let terms = 1 + rng.below(3);
    for _ in 0..terms {
        let v = vars[rng.below(vars.len() as u64) as usize];
        let coeff = loop {
            let c = rng.int(-3, 3);
            if c != 0 {
                break c;
            }
        };
        expr += LinExpr::scaled_var(v, coeff);
    }
    let rel = match rng.below(4) {
        0 => Rel::Ge,
        1 => Rel::Eq,
        _ => Rel::Le,
    };
    SimplexConstraint { expr, rel }
}

fn rational_model_satisfies(constraints: &[SimplexConstraint], model: &BTreeMap<Var, Rat>) {
    for c in constraints {
        let mut value = Rat::from_int(c.expr.constant_part());
        for (v, coeff) in c.expr.terms() {
            value += Rat::from_int(coeff) * model.get(&v).copied().unwrap_or(Rat::ZERO);
        }
        let ok = match c.rel {
            Rel::Le => value <= Rat::ZERO,
            Rel::Ge => value >= Rat::ZERO,
            Rel::Eq => value == Rat::ZERO,
        };
        assert!(ok, "warm-started model violates {c:?} (value {value})");
    }
}

#[test]
fn incremental_tableau_agrees_with_scratch_over_random_push_pop() {
    let mut rng = Rng(0x1234_5678_9ABC_DEF1);
    let mut pool = VarPool::new();
    let vars: Vec<Var> = (0..4).map(|i| pool.fresh(&format!("v{i}"))).collect();

    for round in 0..60 {
        let mut simplex = IncrementalSimplex::new();
        // the mirror: one Vec per open level (index 0 = root assertions)
        let mut frames: Vec<Vec<SimplexConstraint>> = vec![Vec::new()];
        for step in 0..60 {
            match rng.below(10) {
                // push a level
                0 | 1 => {
                    simplex.push_level();
                    frames.push(Vec::new());
                }
                // pop a level (if one is open)
                2 | 3 => {
                    if frames.len() > 1 {
                        simplex.pop_level();
                        frames.pop();
                    }
                }
                // assert a random constraint into the innermost frame
                _ => {
                    let c = random_constraint(&mut rng, &vars);
                    let live: Vec<SimplexConstraint> = frames.iter().flatten().cloned().collect();
                    match simplex.assert_constraint(&c, step as u32) {
                        Ok(()) => frames.last_mut().expect("root frame").push(c),
                        Err(_) => {
                            // a rejected assertion must be genuinely
                            // inconsistent with the live set
                            let mut with = live.clone();
                            with.push(c);
                            assert_eq!(
                                check_feasibility(&with),
                                SimplexResult::Infeasible,
                                "round {round} step {step}: assert rejected a feasible set"
                            );
                        }
                    }
                }
            }
            // after every operation the warm-started verdict must match a
            // from-scratch solve of the flattened live set
            let live: Vec<SimplexConstraint> = frames.iter().flatten().cloned().collect();
            let scratch = check_feasibility(&live);
            match simplex.check() {
                Ok(()) => {
                    assert!(
                        scratch.is_feasible(),
                        "round {round} step {step}: incremental feasible, scratch infeasible on {live:?}"
                    );
                    rational_model_satisfies(&live, &simplex.model());
                }
                Err(core) => {
                    assert!(
                        !scratch.is_feasible(),
                        "round {round} step {step}: incremental infeasible, scratch feasible on {live:?}"
                    );
                    assert!(!core.is_empty(), "empty conflict core");
                }
            }
        }
    }
}

#[test]
fn incremental_conflict_cores_are_infeasible_subsets() {
    let mut rng = Rng(0xFEED_FACE_0BAD_CAFE);
    let mut pool = VarPool::new();
    let vars: Vec<Var> = (0..3).map(|i| pool.fresh(&format!("c{i}"))).collect();

    let mut cores_seen = 0usize;
    for _ in 0..200 {
        let mut simplex = IncrementalSimplex::new();
        let mut asserted: Vec<SimplexConstraint> = Vec::new();
        let mut core: Option<Vec<u32>> = None;
        for i in 0..10 {
            let c = random_constraint(&mut rng, &vars);
            match simplex.assert_constraint(&c, i as u32) {
                Ok(()) => asserted.push(c),
                Err(tags) => {
                    asserted.push(c);
                    core = Some(tags);
                    break;
                }
            }
        }
        if core.is_none() {
            core = simplex.check().err();
        }
        let Some(core) = core else { continue };
        cores_seen += 1;
        // every tag indexes an asserted constraint, and the tagged subset
        // alone is infeasible (the Farkas certificate really certifies)
        let subset: Vec<SimplexConstraint> =
            core.iter().map(|&t| asserted[t as usize].clone()).collect();
        assert_eq!(
            check_feasibility(&subset),
            SimplexResult::Infeasible,
            "core {core:?} of {asserted:?} is not a certificate"
        );
    }
    assert!(
        cores_seen >= 30,
        "too few conflicts generated: {cores_seen}"
    );
}

fn random_atom(rng: &mut Rng, vars: &[Var]) -> Formula {
    let mut expr = LinExpr::constant(rng.int(-6, 6));
    let terms = 1 + rng.below(3);
    for _ in 0..terms {
        let v = vars[rng.below(vars.len() as u64) as usize];
        let coeff = match rng.below(8) {
            0 => 2,
            1 => -2,
            2 => 3,
            _ => *[-1i128, 1].get(rng.below(2) as usize).unwrap(),
        };
        expr += LinExpr::scaled_var(v, coeff);
    }
    let cmp = match rng.below(6) {
        0 => Cmp::Le,
        1 => Cmp::Lt,
        2 => Cmp::Ge,
        3 => Cmp::Gt,
        4 => Cmp::Eq,
        _ => Cmp::Ne,
    };
    Formula::Atom(posr_lia::formula::Atom { expr, cmp })
}

fn random_formula(rng: &mut Rng, vars: &[Var], depth: usize) -> Formula {
    if depth == 0 || rng.below(3) == 0 {
        return random_atom(rng, vars);
    }
    match rng.below(4) {
        0 => {
            let n = 2 + rng.below(3) as usize;
            Formula::and(
                (0..n)
                    .map(|_| random_formula(rng, vars, depth - 1))
                    .collect(),
            )
        }
        1 => {
            let n = 2 + rng.below(3) as usize;
            Formula::or(
                (0..n)
                    .map(|_| random_formula(rng, vars, depth - 1))
                    .collect(),
            )
        }
        2 => Formula::not(random_formula(rng, vars, depth - 1)),
        _ => random_atom(rng, vars),
    }
}

/// A bounding box keeps every instance decidable well within the engines'
/// resource limits, so verdicts are definite and comparable.
fn boxed(vars: &[Var], formula: Formula) -> Formula {
    let mut conjuncts = vec![formula];
    for &v in vars {
        conjuncts.push(Formula::ge(LinExpr::var(v), LinExpr::constant(-20)));
        conjuncts.push(Formula::le(LinExpr::var(v), LinExpr::constant(20)));
    }
    Formula::and(conjuncts)
}

#[test]
fn theory_config_matrix_agrees_on_random_formulas() {
    let mut rng = Rng(0x0D15_EA5E_5EED_0007);
    let mut pool = VarPool::new();
    let vars: Vec<Var> = (0..4).map(|i| pool.fresh(&format!("m{i}"))).collect();

    // every combination of the three theory-side switches; index 0 is
    // the full configuration, the all-off row the PR-4 baseline (guided
    // propagation is inert unless the other two are on, but the inert
    // rows are kept — they must be *exactly* inert)
    let mut solvers: Vec<Solver> = Vec::new();
    for theory_propagation in [true, false] {
        for incremental_simplex in [true, false] {
            for guided_propagation in [true, false] {
                solvers.push(Solver::with_config(SolverConfig {
                    theory_propagation,
                    incremental_simplex,
                    guided_propagation,
                    ..SolverConfig::default()
                }));
            }
        }
    }

    let mut sat = 0usize;
    let mut unsat = 0usize;
    for round in 0..250 {
        let formula = boxed(&vars, random_formula(&mut rng, &vars, 3));
        let results: Vec<SolverResult> = solvers.iter().map(|s| s.solve(&formula)).collect();
        let mut verdicts = Vec::new();
        for (i, r) in results.iter().enumerate() {
            match r {
                SolverResult::Sat(m) => {
                    assert!(
                        m.satisfies(&formula),
                        "round {round} config {i}: model fails on {formula:?}"
                    );
                    verdicts.push("sat");
                }
                SolverResult::Unsat => verdicts.push("unsat"),
                SolverResult::Unknown(_) => verdicts.push("unknown"),
            }
        }
        let definite: Vec<&str> = verdicts
            .iter()
            .copied()
            .filter(|&v| v != "unknown")
            .collect();
        assert!(
            definite.windows(2).all(|w| w[0] == w[1]),
            "round {round}: configs disagree: {verdicts:?} on {formula:?}"
        );
        match definite.first() {
            Some(&"sat") => sat += 1,
            Some(&"unsat") => unsat += 1,
            _ => {}
        }
    }
    assert!(sat >= 30, "too few sat instances: {sat}");
    assert!(unsat >= 15, "too few unsat instances: {unsat}");
}

/// The pivot-accounting contract of the satellite fix: the engine's
/// `SolverStats::simplex_pivots` / `row_touches` are *derived* from the
/// obs counters through the engine's own [`posr_obs::CounterScope`] — so
/// an independent scope attached around the whole session must see
/// exactly the same totals.  Any second counting site (the drift the old
/// manual accounting allowed) would break this equality.
#[test]
fn engine_pivot_stats_agree_with_an_external_counter_scope() {
    let mut rng = Rng(0x5CA1_AB1E_0BB0_0042);
    let mut pool = VarPool::new();
    let vars: Vec<Var> = (0..4).map(|i| pool.fresh(&format!("p{i}"))).collect();

    let scope = posr_obs::CounterScope::new();
    let mut session = IncrementalSolver::new();
    {
        let _attached = scope.attach();
        for round in 0..60 {
            match rng.below(5) {
                0 => session.push(),
                1 => {
                    session.pop();
                }
                _ => {
                    let formula = boxed(&vars, random_formula(&mut rng, &vars, 2));
                    session.assert_formula(&formula);
                }
            }
            if round % 3 == 0 {
                let _ = session.solve();
            }
        }
        let _ = session.solve();
    }

    let stats = session.stats();
    assert!(stats.simplex_pivots > 0, "the session must actually pivot");
    assert_eq!(
        stats.simplex_pivots,
        scope.get(posr_lia::simplex::obs_pivot_counter()),
        "engine stats and the obs pivot counter drifted"
    );
    assert_eq!(
        stats.row_touches,
        scope.get(posr_lia::simplex::obs_row_touch_counter()),
        "engine stats and the obs row-touch counter drifted"
    );
}
