//! Randomized differential testing of the two LIA search engines.
//!
//! The structural DPLL(T) walk and the CDCL(T) clause-learning engine are
//! independent implementations over (mostly) shared theory machinery; on
//! any formula where both return a definite verdict they must agree, and
//! every `Sat` model must re-evaluate to true on the *original* formula.
//! The generator covers the shapes the reductions produce — conjunctions
//! of unit atoms, shallow disjunctions, disequalities, negations — plus
//! parity-style scaled atoms that exercise the divisibility refutation.

use posr_lia::formula::{Cmp, Formula};
use posr_lia::solver::{SearchEngine, Solver, SolverConfig, SolverResult};
use posr_lia::term::{LinExpr, Var, VarPool};

/// A tiny deterministic xorshift generator: no external crates, stable
/// across platforms, reproducible failures (the seed prints on mismatch).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform-ish value in `0..n` (n ≤ 2^32).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn int(&mut self, lo: i128, hi: i128) -> i128 {
        lo + self.below((hi - lo + 1) as u64) as i128
    }
}

fn random_atom(rng: &mut Rng, vars: &[Var]) -> Formula {
    let mut expr = LinExpr::constant(rng.int(-6, 6));
    let terms = 1 + rng.below(3);
    for _ in 0..terms {
        let v = vars[rng.below(vars.len() as u64) as usize];
        let coeff = match rng.below(8) {
            0 => 2,
            1 => -2,
            2 => 3,
            _ => *[-1i128, 1].get(rng.below(2) as usize).unwrap(),
        };
        expr += LinExpr::scaled_var(v, coeff);
    }
    let cmp = match rng.below(6) {
        0 => Cmp::Le,
        1 => Cmp::Lt,
        2 => Cmp::Ge,
        3 => Cmp::Gt,
        4 => Cmp::Eq,
        _ => Cmp::Ne,
    };
    Formula::Atom(posr_lia::formula::Atom { expr, cmp })
}

fn random_formula(rng: &mut Rng, vars: &[Var], depth: usize) -> Formula {
    if depth == 0 || rng.below(3) == 0 {
        return random_atom(rng, vars);
    }
    match rng.below(4) {
        0 => {
            let n = 2 + rng.below(3) as usize;
            Formula::and(
                (0..n)
                    .map(|_| random_formula(rng, vars, depth - 1))
                    .collect(),
            )
        }
        1 => {
            let n = 2 + rng.below(3) as usize;
            Formula::or(
                (0..n)
                    .map(|_| random_formula(rng, vars, depth - 1))
                    .collect(),
            )
        }
        2 => Formula::not(random_formula(rng, vars, depth - 1)),
        _ => random_atom(rng, vars),
    }
}

/// A bounding box keeps every instance decidable well within the engines'
/// resource limits, so verdicts are definite and comparable.
fn boxed(vars: &[Var], formula: Formula) -> Formula {
    let mut conjuncts = vec![formula];
    for &v in vars {
        conjuncts.push(Formula::ge(LinExpr::var(v), LinExpr::constant(-20)));
        conjuncts.push(Formula::le(LinExpr::var(v), LinExpr::constant(20)));
    }
    Formula::and(conjuncts)
}

#[test]
fn engines_agree_on_random_formulas() {
    let mut rng = Rng(0x5EED_0123_4567_89AB);
    let mut pool = VarPool::new();
    let vars: Vec<Var> = (0..4).map(|i| pool.fresh(&format!("v{i}"))).collect();

    let structural = Solver::with_config(SolverConfig {
        engine: SearchEngine::Structural,
        ..SolverConfig::default()
    });
    let cdcl = Solver::with_config(SolverConfig {
        engine: SearchEngine::Cdcl,
        ..SolverConfig::default()
    });

    let mut sat = 0usize;
    let mut unsat = 0usize;
    let mut unknown = 0usize;
    for round in 0..200 {
        let formula = boxed(&vars, random_formula(&mut rng, &vars, 3));
        let rs = structural.solve(&formula);
        let rc = cdcl.solve(&formula);
        match (&rs, &rc) {
            (SolverResult::Sat(ms), SolverResult::Sat(mc)) => {
                sat += 1;
                assert!(
                    ms.satisfies(&formula),
                    "round {round}: structural model fails: {formula:?}"
                );
                assert!(
                    mc.satisfies(&formula),
                    "round {round}: cdcl model fails: {formula:?}"
                );
            }
            (SolverResult::Unsat, SolverResult::Unsat) => unsat += 1,
            // a resource-out on either side cannot contradict the other
            // engine's definite verdict, it only reduces coverage
            (SolverResult::Unknown(_), _) | (_, SolverResult::Unknown(_)) => unknown += 1,
            (s, c) => panic!(
                "round {round}: engines disagree: structural {s:?} vs cdcl {c:?} on {formula:?}"
            ),
        }
        // cross-check: a definite Unsat on one side with a model on the
        // other is the one catastrophic outcome; covered by the panic arm
    }
    // the generator must actually exercise both verdicts
    assert!(sat >= 20, "too few sat instances: {sat}");
    assert!(unsat >= 15, "too few unsat instances: {unsat}");
    assert!(
        unknown <= 20,
        "too many unknowns ({unknown}) — instances are supposed to be easy"
    );
}

#[test]
fn engines_agree_on_parity_families() {
    // targeted family: k·x − k·y = c with and without divisibility
    // conflicts, under disjunctive structure — the shape the tag-automaton
    // flow formulas take after the Boolean abstraction
    let mut pool = VarPool::new();
    let x = pool.fresh("x");
    let y = pool.fresh("y");
    let z = pool.fresh("z");
    let structural = Solver::with_config(SolverConfig {
        engine: SearchEngine::Structural,
        ..SolverConfig::default()
    });
    let cdcl = Solver::with_config(SolverConfig {
        engine: SearchEngine::Cdcl,
        ..SolverConfig::default()
    });
    for k in 2..=5i128 {
        for c in 0..=3i128 {
            let formula = Formula::and(vec![
                Formula::eq(
                    LinExpr::scaled_var(x, k) - LinExpr::scaled_var(y, k),
                    LinExpr::scaled_var(z, 1) + LinExpr::constant(c),
                ),
                Formula::or(vec![
                    Formula::eq(LinExpr::var(z), LinExpr::constant(0)),
                    Formula::eq(LinExpr::var(z), LinExpr::constant(1)),
                ]),
                Formula::ge(LinExpr::var(x), LinExpr::constant(0)),
                Formula::ge(LinExpr::var(y), LinExpr::constant(0)),
                Formula::le(LinExpr::var(x), LinExpr::constant(50)),
                Formula::le(LinExpr::var(y), LinExpr::constant(50)),
            ]);
            let rs = structural.solve(&formula);
            let rc = cdcl.solve(&formula);
            match (&rs, &rc) {
                (SolverResult::Sat(ms), SolverResult::Sat(mc)) => {
                    assert!(ms.satisfies(&formula));
                    assert!(mc.satisfies(&formula));
                }
                (SolverResult::Unsat, SolverResult::Unsat) => {}
                (s, c2) => panic!("k={k} c={c}: structural {s:?} vs cdcl {c2:?}"),
            }
        }
    }
}
