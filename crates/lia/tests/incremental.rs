//! Randomized testing of the incremental solving layer.
//!
//! (a) **Push/pop soundness:** a session that asserts a base formula,
//! pushes and asserts increments, pops and re-checks must agree with
//! one-shot solves of the equivalent flattened conjunctions at every step
//! (same xorshift generator as the engine differential suite, so failures
//! reproduce from the printed seed).
//!
//! (b) **Clause retention:** after a satisfiable solve, asserting a
//! model-blocking cut and re-solving must keep the session's learned
//! clauses — asserted on the engine's counters, no timing involved.

use posr_lia::formula::{Cmp, Formula};
use posr_lia::incremental::IncrementalSolver;
use posr_lia::solver::{Solver, SolverConfig, SolverResult};
use posr_lia::term::{LinExpr, Var, VarPool};

/// A tiny deterministic xorshift generator: no external crates, stable
/// across platforms, reproducible failures (the seed prints on mismatch).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform-ish value in `0..n` (n ≤ 2^32).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn int(&mut self, lo: i128, hi: i128) -> i128 {
        lo + self.below((hi - lo + 1) as u64) as i128
    }
}

fn random_atom(rng: &mut Rng, vars: &[Var]) -> Formula {
    let mut expr = LinExpr::constant(rng.int(-6, 6));
    let terms = 1 + rng.below(3);
    for _ in 0..terms {
        let v = vars[rng.below(vars.len() as u64) as usize];
        let coeff = match rng.below(8) {
            0 => 2,
            1 => -2,
            2 => 3,
            _ => *[-1i128, 1].get(rng.below(2) as usize).unwrap(),
        };
        expr += LinExpr::scaled_var(v, coeff);
    }
    let cmp = match rng.below(6) {
        0 => Cmp::Le,
        1 => Cmp::Lt,
        2 => Cmp::Ge,
        3 => Cmp::Gt,
        4 => Cmp::Eq,
        _ => Cmp::Ne,
    };
    Formula::Atom(posr_lia::formula::Atom { expr, cmp })
}

fn random_formula(rng: &mut Rng, vars: &[Var], depth: usize) -> Formula {
    if depth == 0 || rng.below(3) == 0 {
        return random_atom(rng, vars);
    }
    match rng.below(4) {
        0 => {
            let n = 2 + rng.below(3) as usize;
            Formula::and(
                (0..n)
                    .map(|_| random_formula(rng, vars, depth - 1))
                    .collect(),
            )
        }
        1 => {
            let n = 2 + rng.below(3) as usize;
            Formula::or(
                (0..n)
                    .map(|_| random_formula(rng, vars, depth - 1))
                    .collect(),
            )
        }
        2 => Formula::not(random_formula(rng, vars, depth - 1)),
        _ => random_atom(rng, vars),
    }
}

/// A bounding box keeps every instance decidable well within the engines'
/// resource limits, so verdicts are definite and comparable.
fn boxed(vars: &[Var], formula: Formula) -> Formula {
    let mut conjuncts = vec![formula];
    for &v in vars {
        conjuncts.push(Formula::ge(LinExpr::var(v), LinExpr::constant(-20)));
        conjuncts.push(Formula::le(LinExpr::var(v), LinExpr::constant(20)));
    }
    Formula::and(conjuncts)
}

/// One-shot reference verdict for a conjunction.
fn one_shot(parts: &[&Formula]) -> SolverResult {
    Solver::new().solve(&Formula::and(parts.iter().map(|&f| f.clone()).collect()))
}

/// Compares an incremental answer against the one-shot reference; models
/// must satisfy the flattened conjunction, definite verdicts must agree.
fn check_agreement(round: usize, stage: &str, incremental: &SolverResult, parts: &[&Formula]) {
    let reference = one_shot(parts);
    match (incremental, &reference) {
        (SolverResult::Sat(m), SolverResult::Sat(_)) => {
            let flat = Formula::and(parts.iter().map(|&f| f.clone()).collect());
            assert!(
                m.satisfies(&flat),
                "round {round} {stage}: incremental model violates the flattened formula"
            );
        }
        (SolverResult::Unsat, SolverResult::Unsat) => {}
        (SolverResult::Unknown(_), _) | (_, SolverResult::Unknown(_)) => {}
        (inc, reference) => {
            panic!("round {round} {stage}: incremental {inc:?} vs one-shot {reference:?}")
        }
    }
}

#[test]
fn push_pop_agrees_with_one_shot_solves() {
    let mut rng = Rng(0xD1CE_0123_4567_89AB);
    let mut pool = VarPool::new();
    let vars: Vec<Var> = (0..4).map(|i| pool.fresh(&format!("v{i}"))).collect();

    let mut decided = 0usize;
    for round in 0..60 {
        let base = boxed(&vars, random_formula(&mut rng, &vars, 2));
        let inc_a = random_formula(&mut rng, &vars, 2);
        let inc_b = random_formula(&mut rng, &vars, 2);

        let mut session = IncrementalSolver::new();
        session.assert_formula(&base);
        let r0 = session.solve();
        check_agreement(round, "base", &r0, &[&base]);

        // push the first increment
        session.push();
        session.assert_formula(&inc_a);
        let r1 = session.solve();
        check_agreement(round, "base+a", &r1, &[&base, &inc_a]);

        // nested frame with the second increment
        session.push();
        session.assert_formula(&inc_b);
        let r2 = session.solve();
        check_agreement(round, "base+a+b", &r2, &[&base, &inc_a, &inc_b]);

        // pop back to base+a, then to base; earlier verdicts must reproduce
        assert!(session.pop());
        let r3 = session.solve();
        check_agreement(round, "after pop to base+a", &r3, &[&base, &inc_a]);
        assert!(session.pop());
        let r4 = session.solve();
        check_agreement(round, "after pop to base", &r4, &[&base]);

        // the re-solve after the pops must reproduce the original verdicts
        // exactly (not just agree with one-shot): the session carries no
        // residue of the popped frames
        assert_eq!(
            r4.is_sat(),
            r0.is_sat(),
            "round {round}: base verdict drifted"
        );
        assert_eq!(
            r3.is_sat(),
            r1.is_sat(),
            "round {round}: base+a verdict drifted"
        );
        if !matches!(r2, SolverResult::Unknown(_)) {
            decided += 1;
        }
    }
    assert!(decided >= 50, "too many undecided rounds: {decided}/60");
}

#[test]
fn interleaved_root_assertions_and_frames() {
    // root-level assertions arriving between frames must persist across
    // pops, while frame assertions must not
    let mut rng = Rng(0xBEEF_CAFE_1234_5678);
    let mut pool = VarPool::new();
    let vars: Vec<Var> = (0..3).map(|i| pool.fresh(&format!("w{i}"))).collect();
    for round in 0..30 {
        let base = boxed(&vars, random_formula(&mut rng, &vars, 2));
        let frame = random_formula(&mut rng, &vars, 2);
        let late_root = random_formula(&mut rng, &vars, 1);

        let mut session = IncrementalSolver::new();
        session.assert_formula(&base);
        session.push();
        session.assert_formula(&frame);
        let _ = session.solve();
        assert!(session.pop());
        // a root assertion *after* the pop
        session.assert_formula(&late_root);
        let r = session.solve();
        check_agreement(round, "base+late", &r, &[&base, &late_root]);
    }
}

#[test]
fn resolve_after_blocking_cut_retains_learned_clauses() {
    // a 0/1 system whose first solve necessarily learns clauses; blocking
    // the found model (a CEGAR-style cut) and re-solving must carry the
    // learned clauses into the re-solve — stats-based, no timing.
    // Theory propagation decides this family without a single conflict
    // (nothing to learn, nothing to retain), so it is pinned off: the
    // test targets clause retention, not the propagator.
    let mut pool = VarPool::new();
    let vars: Vec<Var> = (0..8).map(|i| pool.fresh(&format!("b{i}"))).collect();
    let mut session = IncrementalSolver::with_config(SolverConfig {
        theory_propagation: false,
        ..SolverConfig::default()
    });
    for &v in &vars {
        session.assert_formula(&Formula::or(vec![
            Formula::eq(LinExpr::var(v), LinExpr::constant(0)),
            Formula::eq(LinExpr::var(v), LinExpr::constant(1)),
        ]));
    }
    // couple the variables so pure propagation cannot finish the job
    for w in vars.windows(3) {
        session.assert_formula(&Formula::le(
            LinExpr::sum_of_vars(w.iter().copied()),
            LinExpr::constant(2),
        ));
    }
    session.assert_formula(&Formula::ge(
        LinExpr::sum_of_vars(vars.iter().copied()),
        LinExpr::constant(5),
    ));

    let mut blocked = 0usize;
    loop {
        let before = session.stats();
        match session.solve() {
            SolverResult::Sat(model) => {
                if blocked >= 1 {
                    assert!(
                        before.learned_live > 0,
                        "re-solve {blocked} started without retained lemmas: {before:?}"
                    );
                }
                // block this exact assignment and go again
                let cut = Formula::or(
                    vars.iter()
                        .map(|&v| Formula::ne(LinExpr::var(v), LinExpr::constant(model.value(v))))
                        .collect(),
                );
                session.assert_formula(&cut);
                blocked += 1;
                if blocked >= 4 {
                    break;
                }
            }
            SolverResult::Unsat => break,
            SolverResult::Unknown(reason) => panic!("unexpected unknown: {reason}"),
        }
    }
    assert!(blocked >= 2, "instance must survive at least two cuts");
    let stats = session.stats();
    assert!(
        stats.learned_total > 0,
        "the session never learned anything: {stats:?}"
    );
}
