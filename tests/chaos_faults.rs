//! Fault-injection and budget integration tests: overflow forced through
//! every public solve entry point must come back as a clean answer (never a
//! panic escaping to the caller), the BigInt slow lane must rescue
//! coefficient systems past the machine-word boundary, and a budget axis
//! running out must degrade to a self-describing `Unknown`.
//!
//! Injection state is process-global, so every test here takes the same
//! lock and disarms on exit (including panicking exits, via the guard).
//! This file is its own test binary; cargo runs binaries sequentially, so
//! the armed windows never overlap the rest of the suite.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use posr_core::ast::{StringFormula, StringTerm};
use posr_core::solver::{Answer, SolverOptions, StringSolver};
use posr_lia::formula::Formula;
use posr_lia::solver::{Solver, SolverConfig, SolverResult};
use posr_lia::term::{LinExpr, VarPool};
use posr_lia::{CancelToken, IncrementalSolver};

static SERIAL: Mutex<()> = Mutex::new(());

/// Disarms injection on drop, so a failing assertion cannot leave the
/// injector armed for the next test.
struct Disarm;

impl Drop for Disarm {
    fn drop(&mut self) {
        posr_obs::fault::configure(0, 0.0);
    }
}

fn arm_overflow_everywhere() -> Disarm {
    posr_obs::fault::configure(0xFA17, 1.0);
    posr_obs::fault::set_allowed(&[posr_obs::FaultKind::Overflow]);
    Disarm
}

fn lia_formula() -> (VarPool, Formula) {
    let mut pool = VarPool::new();
    let x = pool.fresh("x");
    let y = pool.fresh("y");
    let f = Formula::and(vec![
        Formula::eq(LinExpr::var(x) + LinExpr::var(y), LinExpr::constant(5)),
        Formula::ge(LinExpr::var(x), LinExpr::constant(2)),
        Formula::ge(LinExpr::var(y), LinExpr::constant(2)),
    ]);
    (pool, f)
}

fn string_formula() -> StringFormula {
    StringFormula::new()
        .in_re("x", "(ab)*")
        .in_re("y", "(ba)*")
        .diseq(StringTerm::var("x"), StringTerm::var("y"))
        .len_eq("x", "y")
}

/// Forces [`posr_obs::FaultKind::Overflow`] through every public solve
/// entry point at rate 1.0 and requires each to come back with an answer —
/// `Unknown` is fine, an escaped `OVERFLOW_MSG` panic is the regression
/// this guards against.
#[test]
fn forced_overflow_degrades_every_entry_point_cleanly() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let _disarm = arm_overflow_everywhere();

    type Entry = (&'static str, Box<dyn Fn() -> String>);
    let entries: Vec<Entry> = vec![
        (
            "posr_lia::Solver::solve",
            Box::new(|| {
                let (_, f) = lia_formula();
                format!("{:?}", Solver::new().solve(&f))
            }),
        ),
        (
            "posr_lia::IncrementalSolver::solve",
            Box::new(|| {
                let (_, f) = lia_formula();
                let mut session = IncrementalSolver::new();
                session.assert_formula(&f);
                format!("{:?}", session.solve())
            }),
        ),
        (
            "posr_tagauto::SystemEncoding::solve_with_cuts",
            Box::new(|| {
                use posr_tagauto::{PositionConstraint, SystemEncoder, VarTable};
                let mut vars = VarTable::new();
                let x = vars.intern("x");
                let y = vars.intern("y");
                let mut automata = BTreeMap::new();
                automata.insert(x, posr_automata::Regex::parse("abc").unwrap().compile());
                automata.insert(y, posr_automata::Regex::parse("abc").unwrap().compile());
                let encoder = SystemEncoder::new(&automata, &vars);
                let mut pool = VarPool::new();
                let encoding =
                    encoder.encode(&[PositionConstraint::diseq(vec![x], vec![y])], &mut pool);
                let report = encoding.solve_with_cuts(&Formula::True, &SolverConfig::default(), 8);
                format!("{:?}", report.result)
            }),
        ),
        (
            "posr_core::StringSolver::solve",
            Box::new(|| format!("{:?}", StringSolver::new().solve(&string_formula()))),
        ),
        (
            "posr_core::SolverSession::check_sat",
            Box::new(|| {
                let mut session = posr_core::session::SolverSession::new();
                session.assert_all(string_formula().atoms);
                format!("{:?}", session.check_sat())
            }),
        ),
        (
            "posr_portfolio::solve_batch",
            Box::new(|| {
                let report = posr_portfolio::solve_batch(
                    &[posr_portfolio::BatchItem::new(
                        "chaos-item",
                        string_formula(),
                    )],
                    &posr_portfolio::PortfolioSolver::new(),
                    &posr_portfolio::BatchOptions::default(),
                );
                report.outcomes[0].status().to_string()
            }),
        ),
    ];

    for (name, run) in entries {
        // the assertion is the absence of a panic: each entry point's
        // overflow guard must turn the injected overflow into an answer
        let answer = run();
        assert!(!answer.is_empty(), "{name} returned nothing");
    }
}

/// The BigInt slow lane: a coefficient system past the `i64` boundary used
/// to drown in `OVERFLOW_MSG` panics (reported as `Unknown`); the checked
/// arbitrary-precision fallback now decides it both ways.
#[test]
fn huge_coefficient_systems_answer_definitely_via_the_slow_lane() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let slow_lane = posr_obs::counter("lia.rat.slow_lane");
    let before = slow_lane.value();

    // both past i64::MAX; the shared power-of-2 factor is what lets the
    // slow lane's gcd reduction pull overflowed intermediates back into
    // i128 range (fully coprime coefficients would produce tableau entries
    // that genuinely need >127 bits and correctly stay Unknown)
    let c1: i128 = 1i128 << 63;
    let c2: i128 = (1i128 << 63) + 2;
    let mut pool = VarPool::new();
    let x = pool.fresh("x");
    let y = pool.fresh("y");
    let sym = |a: i128, b: i128, c: i128| {
        Formula::eq(
            LinExpr::scaled_var(x, a) + LinExpr::scaled_var(y, b),
            LinExpr::constant(c),
        )
    };

    // c1·x + c2·y = c1 + c2 ∧ c2·x + c1·y = c1 + c2 has the unique
    // rational solution x = y = 1
    let base = vec![sym(c1, c2, c1 + c2), sym(c2, c1, c1 + c2)];
    let sat = Formula::and(base.clone());
    match Solver::new().solve(&sat) {
        SolverResult::Sat(model) => {
            assert_eq!(model.value(x), 1);
            assert_eq!(model.value(y), 1);
        }
        other => panic!("expected sat past the i64 boundary, got {other:?}"),
    }

    // … so forcing x + y = 3 on top is a refutation, not a resource-out
    let mut parts = base;
    parts.push(Formula::eq(
        LinExpr::var(x) + LinExpr::var(y),
        LinExpr::constant(3),
    ));
    let unsat = Formula::and(parts);
    assert_eq!(Solver::new().solve(&unsat), SolverResult::Unsat);

    assert!(
        slow_lane.value() > before,
        "the system decided without ever taking the slow lane — \
         coefficients no longer stress the fast path"
    );
}

/// A conflict budget running out degrades to `Unknown` naming the axis.
#[test]
fn conflict_budget_exhaustion_reports_its_axis() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let budget = Arc::new(posr_obs::Budget::unlimited().with_conflict_limit(1));
    let token = CancelToken::new().with_budget(Arc::clone(&budget));
    let options = SolverOptions {
        cancel: token,
        ..SolverOptions::default()
    };
    // the flagship loopy refutation needs far more than one conflict
    let f = StringFormula::new()
        .in_re("x", "(ab)*")
        .in_re("y", "(ab)*")
        .diseq(StringTerm::var("x"), StringTerm::var("y"))
        .len_eq("x", "y");
    match StringSolver::with_options(options).solve(&f) {
        Answer::Unknown(reason) => {
            assert!(
                reason.contains(posr_obs::CONFLICT_BUDGET_MSG),
                "reason should name the conflict axis, got: {reason}"
            );
        }
        other => panic!("expected a budgeted Unknown, got {other:?}"),
    }
    assert!(budget.conflicts() > 1);
}

/// A memory budget running out degrades to `Unknown` naming the axis.
#[test]
fn memory_budget_exhaustion_reports_its_axis() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let budget = Arc::new(posr_obs::Budget::unlimited().with_mem_limit(1));
    let token = CancelToken::new().with_budget(Arc::clone(&budget));
    let options = SolverOptions {
        cancel: token,
        ..SolverOptions::default()
    };
    let f = StringFormula::new()
        .in_re("x", "(ab)*")
        .in_re("y", "(ab)*")
        .diseq(StringTerm::var("x"), StringTerm::var("y"))
        .len_eq("x", "y");
    match StringSolver::with_options(options).solve(&f) {
        Answer::Unknown(reason) => {
            assert!(
                reason.contains(posr_obs::MEM_BUDGET_MSG),
                "reason should name the memory axis, got: {reason}"
            );
        }
        other => panic!("expected a budgeted Unknown, got {other:?}"),
    }
}
