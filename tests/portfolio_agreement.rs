//! Portfolio ↔ sequential agreement and cancellation, end to end.
//!
//! The portfolio races engines that share almost no code paths, so verdict
//! agreement with the sequential `StringSolver` over randomized instances
//! from all four benchmark families is a strong soundness check — and the
//! cancellation tests prove that losing/hung strategies are actually
//! abandoned rather than joined to completion.

use std::sync::Arc;
use std::time::{Duration, Instant};

use posr_bench::{suite, suite_names};
use posr_core::ast::{StringFormula, StringTerm};
use posr_core::solver::{answer_status, Answer, SolverOptions, StringSolver};
use posr_core::CancelToken;
use posr_portfolio::{
    solve_batch, BatchItem, BatchOptions, PortfolioSolver, Strategy, StrategyOutcome,
    TagPosStrategy,
};

const PER_PROBLEM: Duration = Duration::from_secs(10);

fn sequential_verdict(formula: &StringFormula) -> &'static str {
    let options = SolverOptions {
        deadline: Some(Instant::now() + PER_PROBLEM),
        ..SolverOptions::default()
    };
    answer_status(&StringSolver::with_options(options).solve(formula))
}

#[test]
fn randomized_agreement_with_sequential_solver() {
    let portfolio = PortfolioSolver::new();
    for family in suite_names() {
        for instance in suite(family, 4, 20_257) {
            let sequential = sequential_verdict(&instance.formula);
            let result = portfolio.solve_with(&instance.formula, Some(PER_PROBLEM), None);
            let parallel = answer_status(&result.answer);
            // definite answers must agree; unknowns may flip either way
            // (engines have different resource limits)
            assert!(
                !matches!((sequential, parallel), ("sat", "unsat") | ("unsat", "sat")),
                "{}: sequential={sequential}, portfolio={parallel}",
                instance.name
            );
            if let Answer::Sat(model) = &result.answer {
                assert!(
                    model.satisfies(&instance.formula),
                    "{}: portfolio model must validate",
                    instance.name
                );
            }
        }
    }
}

#[test]
fn batch_driver_agrees_and_aggregates() {
    let mut items = Vec::new();
    for family in suite_names() {
        for instance in suite(family, 3, 911) {
            items.push(BatchItem::new(instance.name, instance.formula));
        }
    }
    let expected: Vec<&'static str> = items
        .iter()
        .map(|i| sequential_verdict(&i.formula))
        .collect();

    let report = solve_batch(
        &items,
        &PortfolioSolver::new(),
        &BatchOptions {
            workers: 0,
            timeout: Some(PER_PROBLEM),
        },
    );
    assert_eq!(report.stats.total, items.len());
    assert_eq!(
        report.stats.sat + report.stats.unsat + report.stats.unknown,
        report.stats.total
    );
    for (outcome, sequential) in report.outcomes.iter().zip(expected) {
        let parallel = outcome.status();
        assert!(
            !matches!((sequential, parallel), ("sat", "unsat") | ("unsat", "sat")),
            "{}: sequential={sequential}, batch={parallel}",
            outcome.name
        );
    }
}

/// Never answers until its token fires; proves losers are truly abandoned.
struct HangingStrategy;

impl Strategy for HangingStrategy {
    fn name(&self) -> &'static str {
        "hanging"
    }

    fn solve(&self, _formula: &StringFormula, cancel: &CancelToken) -> Answer {
        while !cancel.is_cancelled() {
            std::thread::sleep(Duration::from_millis(1));
        }
        Answer::Unknown(cancel.unknown_reason())
    }
}

#[test]
fn hung_strategy_is_abandoned_after_the_winner_finishes() {
    // pin the concurrent race: on a 1-core host the auto-detected mode
    // would be the sequential schedule, which abandons by slice expiry
    // rather than by losing a race
    let portfolio = PortfolioSolver::with_strategies(vec![
        Arc::new(TagPosStrategy::default()),
        Arc::new(HangingStrategy),
    ])
    .with_parallelism(2);
    let unsat = StringFormula::new()
        .in_re("x", "abc")
        .diseq(StringTerm::var("x"), StringTerm::lit("abc"));
    let start = Instant::now();
    let result = portfolio.solve_with(&unsat, None, None);
    assert!(result.answer.is_unsat(), "got {:?}", result.answer);
    assert_eq!(result.winner, Some("tag-pos"));
    // without cooperative cancellation the hung strategy would block forever
    assert!(start.elapsed() < Duration::from_secs(60));
    let hanging = result.reports.iter().find(|r| r.name == "hanging").unwrap();
    assert_eq!(hanging.outcome, StrategyOutcome::Cancelled);
}

#[test]
fn deadline_abandons_every_hung_strategy() {
    let portfolio = PortfolioSolver::with_strategies(vec![
        Arc::new(HangingStrategy),
        Arc::new(HangingStrategy),
        Arc::new(HangingStrategy),
    ])
    .with_parallelism(3);
    let formula = StringFormula::new().in_re("x", "(ab)*");
    let start = Instant::now();
    let result = portfolio.solve_with(&formula, Some(Duration::from_millis(150)), None);
    assert!(result.answer.is_unknown());
    assert!(start.elapsed() < Duration::from_secs(60));
    assert!(result
        .reports
        .iter()
        .all(|r| r.outcome == StrategyOutcome::Cancelled));
}
