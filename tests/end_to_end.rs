//! End-to-end integration tests across the whole workspace: surface formulas
//! go through normalisation, stabilisation, the tag-automaton encoding and
//! the LIA solver, and the resulting models are validated concretely.

use posr_core::ast::{LenCmp, LenTerm, StringAtom, StringFormula, StringTerm};
use posr_core::solver::{Answer, StringSolver};

fn solve(formula: &StringFormula) -> Answer {
    StringSolver::new().solve(formula)
}

fn assert_sat(formula: &StringFormula) {
    match solve(formula) {
        Answer::Sat(model) => assert!(model.satisfies(formula), "model must satisfy the formula"),
        other => panic!("expected sat, got {other:?}"),
    }
}

fn assert_unsat(formula: &StringFormula) {
    assert_eq!(solve(formula), Answer::Unsat);
}

#[test]
fn disequality_with_length_coupling() {
    // x ∈ (ab)*, y ∈ (ba)*: satisfiable via x = "ab", y = "ba"; with (ab)*
    // on both sides equal lengths would force equal words
    assert_sat(
        &StringFormula::new()
            .in_re("x", "(ab)*")
            .in_re("y", "(ba)*")
            .diseq(StringTerm::var("x"), StringTerm::var("y"))
            .len_eq("x", "y"),
    );
}

#[test]
fn disequality_of_fixed_equal_words_is_unsat() {
    assert_unsat(
        &StringFormula::new()
            .in_re("x", "abab")
            .in_re("y", "abab")
            .diseq(StringTerm::var("x"), StringTerm::var("y")),
    );
}

#[test]
fn commuting_concatenations_unsat() {
    let x = StringTerm::var("x");
    let y = StringTerm::var("y");
    assert_unsat(
        &StringFormula::new()
            .in_re("x", "a*")
            .in_re("y", "a*")
            .diseq(
                StringTerm::concat(vec![x.clone(), y.clone()]),
                StringTerm::concat(vec![y, x]),
            ),
    );
}

#[test]
fn non_commuting_concatenations_sat() {
    let x = StringTerm::var("x");
    let y = StringTerm::var("y");
    assert_sat(
        &StringFormula::new()
            .in_re("x", "(ab)+")
            .in_re("y", "(ba)+")
            .diseq(
                StringTerm::concat(vec![x.clone(), y.clone()]),
                StringTerm::concat(vec![y, x]),
            ),
    );
}

#[test]
fn three_sat_reduction_instances() {
    // the NP-hardness construction of Lemma 7.2: one clause, satisfiable
    let f = StringFormula::new()
        .in_re("y1", "0|1")
        .in_re("y2", "0|1")
        .in_re("y3", "0|1")
        .diseq(
            StringTerm::concat(vec![
                StringTerm::var("y1"),
                StringTerm::var("y2"),
                StringTerm::var("y3"),
            ]),
            StringTerm::lit("010"),
        );
    assert_sat(&f);
    // forcing the assignment to the forbidden word makes it unsat
    let forced = f
        .clone()
        .eq(StringTerm::var("y1"), StringTerm::lit("0"))
        .eq(StringTerm::var("y2"), StringTerm::lit("1"))
        .eq(StringTerm::var("y3"), StringTerm::lit("0"));
    assert_unsat(&forced);
}

#[test]
fn negated_prefix_and_suffix() {
    assert_unsat(
        &StringFormula::new()
            .in_re("x", "a")
            .in_re("y", "a(ab)*")
            .not_prefixof(StringTerm::var("x"), StringTerm::var("y")),
    );
    assert_sat(
        &StringFormula::new()
            .in_re("x", "a|b")
            .in_re("y", "(ab)+")
            .not_suffixof(StringTerm::var("x"), StringTerm::var("y")),
    );
}

#[test]
fn str_at_positive_and_negative() {
    let f = StringFormula::new()
        .in_re("c", "b")
        .in_re("y", "(ab)*")
        .atom(StringAtom::StrAt {
            var: "c".to_string(),
            term: StringTerm::var("y"),
            index: LenTerm::int_var("i"),
            negated: false,
        })
        .length(LenTerm::int_var("i"), LenCmp::Ge, LenTerm::constant(0));
    match StringSolver::new().solve(&f) {
        Answer::Sat(model) => {
            let y = model.string("y").to_string();
            let i = model.int("i") as usize;
            assert_eq!(y.chars().nth(i), Some('b'));
        }
        other => panic!("expected sat, got {other:?}"),
    }
}

#[test]
fn not_contains_flat_languages() {
    assert_unsat(&StringFormula::new().in_re("x", "(ab)*").not_contains(
        StringTerm::concat(vec![StringTerm::var("x"), StringTerm::var("x")]),
        StringTerm::var("x"),
    ));
    assert_sat(
        &StringFormula::new()
            .in_re("x", "(ab)+")
            .in_re("y", "(ba)+")
            .not_contains(StringTerm::var("y"), StringTerm::var("x")),
    );
}

#[test]
fn equations_combine_with_position_constraints() {
    // w ∈ (ab)*, w = x·y, x ≠ "ab", |w| ≥ 2
    let f = StringFormula::new()
        .in_re("w", "(ab)*")
        .eq(
            StringTerm::var("w"),
            StringTerm::concat(vec![StringTerm::var("x"), StringTerm::var("y")]),
        )
        .diseq(StringTerm::var("x"), StringTerm::lit("ab"))
        .length(LenTerm::len("w"), LenCmp::Ge, LenTerm::constant(2));
    assert_sat(&f);
}

#[test]
fn length_constraints_alone() {
    assert_unsat(&StringFormula::new().in_re("x", "(abc)*").length(
        LenTerm::len("x"),
        LenCmp::Eq,
        LenTerm::constant(4),
    ));
    assert_sat(&StringFormula::new().in_re("x", "(abc)*").length(
        LenTerm::len("x"),
        LenCmp::Eq,
        LenTerm::constant(6),
    ));
}
