// Shared helpers for the posr integration tests live in the individual test files.
