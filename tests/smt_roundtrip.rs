//! Integration of the SMT-LIB front end with the solver: parse scripts,
//! solve them, and validate the models against the parsed formula — plus
//! incremental command streams (`push`/`pop`, multiple `check-sat`)
//! through `run_script`, cross-checked against one-shot solves of the
//! equivalent flattened formulas.

use posr_core::solver::StringSolver;
use posr_smtfmt::{parse_script, run_script, CommandResponse};

fn solve_script(script: &str) -> posr_core::Answer {
    let parsed = parse_script(script).expect("script must parse");
    StringSolver::new().solve(&parsed.formula)
}

#[test]
fn sat_script_with_model_validation() {
    let script = r#"
      (declare-const x String)
      (declare-const y String)
      (assert (str.in_re x (re.+ (str.to_re "ab"))))
      (assert (str.in_re y (re.+ (str.to_re "ba"))))
      (assert (not (= x y)))
      (check-sat)
    "#;
    let parsed = parse_script(script).unwrap();
    match StringSolver::new().solve(&parsed.formula) {
        posr_core::Answer::Sat(model) => assert!(model.satisfies(&parsed.formula)),
        other => panic!("expected sat, got {other:?}"),
    }
}

#[test]
fn unsat_script() {
    let script = r#"
      (declare-const x String)
      (assert (str.in_re x (str.to_re "ab")))
      (assert (not (= x "ab")))
      (check-sat)
    "#;
    assert!(solve_script(script).is_unsat());
}

#[test]
fn not_contains_script() {
    let script = r#"
      (declare-const x String)
      (assert (str.in_re x (re.* (str.to_re "ab"))))
      (assert (not (str.contains (str.++ x x) x)))
      (check-sat)
    "#;
    assert!(solve_script(script).is_unsat());
}

#[test]
fn push_pop_script_flips_sat_to_unsat_and_recovers() {
    // the second check-sat flips sat → unsat after a pushed disequality
    // (two (ab)* words of equal length are necessarily equal) and the pop
    // recovers sat
    let script = r#"
      (declare-const x String)
      (declare-const y String)
      (assert (str.in_re x (re.* (str.to_re "ab"))))
      (assert (str.in_re y (re.* (str.to_re "ab"))))
      (assert (= (str.len x) (str.len y)))
      (check-sat)
      (push 1)
      (assert (not (= x y)))
      (check-sat)
      (pop 1)
      (check-sat)
    "#;
    let outcome = run_script(script).unwrap();
    assert_eq!(outcome.statuses(), ["sat", "unsat", "sat"]);
}

#[test]
fn per_command_answers_match_one_shot_solves_of_flattened_formulas() {
    let prefix = r#"
      (declare-const x String)
      (declare-const y String)
      (assert (str.in_re x (re.+ (str.to_re "ab"))))
      (assert (str.in_re y (re.+ (str.to_re "ba"))))
    "#;
    let pushed = r#"(assert (not (= x y)))"#;
    let script =
        format!("{prefix}(check-sat)\n(push 1)\n{pushed}\n(check-sat)\n(pop 1)\n(check-sat)");
    let outcome = run_script(&script).unwrap();

    // one-shot solves of the equivalent flattened conjunctions
    let flat_base = parse_script(&format!("{prefix}(check-sat)")).unwrap();
    let flat_pushed = parse_script(&format!("{prefix}{pushed}\n(check-sat)")).unwrap();
    let expect = [
        StringSolver::new().solve(&flat_base.formula),
        StringSolver::new().solve(&flat_pushed.formula),
        StringSolver::new().solve(&flat_base.formula),
    ];
    let statuses = outcome.statuses();
    for (i, answer) in expect.iter().enumerate() {
        assert_eq!(
            statuses[i],
            posr_core::solver::answer_status(answer),
            "command {i} disagrees with the flattened one-shot solve"
        );
    }
}

#[test]
fn nested_frames_and_models_across_checks() {
    let script = r#"
      (declare-const x String)
      (declare-const n Int)
      (assert (str.in_re x (re.* (str.to_re "abc"))))
      (push 1)
      (assert (= (str.len x) n))
      (assert (>= n 3))
      (push 1)
      (assert (<= n 3))
      (check-sat)
      (get-model)
      (pop 2)
      (check-sat)
    "#;
    let outcome = run_script(script).unwrap();
    assert_eq!(outcome.statuses(), ["sat", "sat"]);
    match &outcome.responses[1] {
        CommandResponse::Model(Some(model)) => {
            assert_eq!(model.string("x"), "abc");
            assert_eq!(model.int("n"), 3);
        }
        other => panic!("expected the |x| = n = 3 model, got {other:?}"),
    }
}

#[test]
fn length_script() {
    let script = r#"
      (declare-const x String)
      (declare-const n Int)
      (assert (str.in_re x (re.* (str.to_re "abc"))))
      (assert (= (str.len x) n))
      (assert (>= n 5))
      (assert (<= n 7))
      (check-sat)
    "#;
    match solve_script(script) {
        posr_core::Answer::Sat(model) => assert_eq!(model.string("x").len(), 6),
        other => panic!("expected sat, got {other:?}"),
    }
}
