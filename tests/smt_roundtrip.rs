//! Integration of the SMT-LIB front end with the solver: parse scripts,
//! solve them, and validate the models against the parsed formula.

use posr_core::solver::StringSolver;
use posr_smtfmt::parse_script;

fn solve_script(script: &str) -> posr_core::Answer {
    let parsed = parse_script(script).expect("script must parse");
    StringSolver::new().solve(&parsed.formula)
}

#[test]
fn sat_script_with_model_validation() {
    let script = r#"
      (declare-const x String)
      (declare-const y String)
      (assert (str.in_re x (re.+ (str.to_re "ab"))))
      (assert (str.in_re y (re.+ (str.to_re "ba"))))
      (assert (not (= x y)))
      (check-sat)
    "#;
    let parsed = parse_script(script).unwrap();
    match StringSolver::new().solve(&parsed.formula) {
        posr_core::Answer::Sat(model) => assert!(model.satisfies(&parsed.formula)),
        other => panic!("expected sat, got {other:?}"),
    }
}

#[test]
fn unsat_script() {
    let script = r#"
      (declare-const x String)
      (assert (str.in_re x (str.to_re "ab")))
      (assert (not (= x "ab")))
      (check-sat)
    "#;
    assert!(solve_script(script).is_unsat());
}

#[test]
fn not_contains_script() {
    let script = r#"
      (declare-const x String)
      (assert (str.in_re x (re.* (str.to_re "ab"))))
      (assert (not (str.contains (str.++ x x) x)))
      (check-sat)
    "#;
    assert!(solve_script(script).is_unsat());
}

#[test]
fn length_script() {
    let script = r#"
      (declare-const x String)
      (declare-const n Int)
      (assert (str.in_re x (re.* (str.to_re "abc"))))
      (assert (= (str.len x) n))
      (assert (>= n 5))
      (assert (<= n 7))
      (check-sat)
    "#;
    match solve_script(script) {
        posr_core::Answer::Sat(model) => assert_eq!(model.string("x").len(), 6),
        other => panic!("expected sat, got {other:?}"),
    }
}
