//! Cross-solver agreement: the production solver, the baselines and the
//! PTime one-counter procedure must never contradict each other.  This is
//! the strongest soundness check in the repository: the engines share almost
//! no code paths.

use std::collections::BTreeMap;
use std::time::Duration;

use posr_bench::runner::{contradictions, SolverKind};
use posr_bench::{run_suite, suite, suite_names};
use posr_core::ast::{StringFormula, StringTerm};
use posr_core::solver::StringSolver;
use posr_tagauto::onecounter_diseq::single_diseq_satisfiable;
use posr_tagauto::tags::VarTable;

#[test]
fn no_contradictions_on_benchmark_samples() {
    for name in suite_names() {
        let instances = suite(name, 3, 99);
        let results = run_suite(
            &instances,
            &[
                SolverKind::TagPos,
                SolverKind::Enumeration,
                SolverKind::LengthAbstraction,
            ],
            Duration::from_secs(20),
        );
        let bad = contradictions(&results);
        assert!(bad.is_empty(), "contradictory verdicts on {name}: {bad:?}");
    }
}

#[test]
fn one_counter_agrees_with_full_pipeline_on_single_disequalities() {
    let cases = [
        ("(ab)*", "(ac)*"),
        ("abab", "abab"),
        ("a*", "a*"),
        ("(ab)+", "(ba)+"),
        ("abc", "abd"),
    ];
    for (rx, ry) in cases {
        // full pipeline answer
        let formula = StringFormula::new()
            .in_re("x", rx)
            .in_re("y", ry)
            .diseq(StringTerm::var("x"), StringTerm::var("y"));
        let pipeline = StringSolver::new().solve(&formula);

        // PTime one-counter answer
        let mut vars = VarTable::new();
        let x = vars.intern("x");
        let y = vars.intern("y");
        let mut automata = BTreeMap::new();
        automata.insert(x, posr_automata::Regex::parse(rx).unwrap().compile());
        automata.insert(y, posr_automata::Regex::parse(ry).unwrap().compile());
        let oca = single_diseq_satisfiable(&[x], &[y], &automata);

        assert_eq!(
            pipeline.is_sat(),
            oca,
            "disagreement on x ∈ {rx}, y ∈ {ry}: pipeline {pipeline:?}, one-counter {oca}"
        );
    }
}
