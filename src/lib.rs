//! `posr`: a reproduction of *"A Uniform Framework for Handling Position
//! Constraints in String Solving"* (Chen, Havlena, Hečko, Holík, Lengál —
//! PLDI 2025), grown into a concurrent portfolio solving engine.
//!
//! This facade crate re-exports every layer of the workspace:
//!
//! ```text
//!                 ┌──────────────┐   ┌───────────────┐
//!   SMT-LIB text ─▶  posr-smtfmt │   │ posr-portfolio │◀─ batches, races,
//!                 └──────┬───────┘   └───────┬───────┘   cancellation
//!                        ▼                   ▼
//!                 ┌──────────────────────────────────┐
//!                 │            posr-core             │
//!                 │ normalise ▶ monadic ▶ position   │
//!                 └───┬───────────────┬──────────┬───┘
//!                     ▼               ▼          ▼
//!              ┌────────────┐  ┌────────────┐ ┌──────────┐
//!              │posr-automata│ │ posr-tagauto│ │ posr-lia │
//!              └────────────┘  └────────────┘ └──────────┘
//! ```
//!
//! * [`automata`] — NFAs, regex compilation, Parikh images, flatness, the
//!   shared pattern-keyed and content-keyed automaton caches,
//! * [`lia`] — the LIA solver with cooperative cancellation: the
//!   clause-learning CDCL(T) engine (default), the structural DPLL(T)
//!   oracle behind the `SearchEngine` knob, and the incremental layer
//!   (`lia::incremental`: persistent sessions, push/pop, assumptions),
//! * [`tagauto`] — tag automata and the position-constraint encodings,
//! * [`core`] — the solving pipeline (with the incremental CEGAR loops and
//!   the `SolverSession` assertion stack) and the baseline solvers,
//! * [`smtfmt`] — the SMT-LIB-flavoured front end with strategy hints,
//!   including the `run_script` command stream (`push`/`pop`, multiple
//!   `check-sat`, `get-model`),
//! * [`bench`] — workload generators and the evaluation harness,
//! * [`portfolio`] — the concurrent portfolio engine and batch driver.
//!
//! # Quick start
//!
//! ```
//! use posr::core::{Answer, StringSolver};
//! use posr::core::ast::{StringFormula, StringTerm};
//! use posr::portfolio::PortfolioSolver;
//!
//! let formula = StringFormula::new()
//!     .in_re("x", "(ab)*")
//!     .in_re("y", "(ba)*")
//!     .diseq(StringTerm::var("x"), StringTerm::var("y"))
//!     .len_eq("x", "y");
//!
//! // sequential pipeline
//! assert!(StringSolver::new().solve(&formula).is_sat());
//! // concurrent portfolio: same verdict, first validated answer wins
//! assert!(PortfolioSolver::new().solve(&formula).is_sat());
//! ```

pub use posr_automata as automata;
pub use posr_bench as bench;
pub use posr_core as core;
pub use posr_lia as lia;
pub use posr_portfolio as portfolio;
pub use posr_smtfmt as smtfmt;
pub use posr_tagauto as tagauto;
