//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the small API surface the workspace's benchmarks use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`criterion_group!`], [`criterion_main!`]).  Instead of
//! statistical sampling it smoke-runs every benchmark closure a small number
//! of times (configurable via the `CRITERION_SAMPLES` environment variable)
//! and prints mean wall-clock timings — enough to compare encodings and
//! catch order-of-magnitude regressions, and fast enough that accidentally
//! running benches in CI does not hang the pipeline.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

fn samples() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1)
}

/// Measures one closure: a timed loop over `samples()` iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: usize,
    mean: Option<Duration>,
}

impl Bencher {
    /// Runs the routine `samples()` times and records the mean duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let n = self.samples.max(1);
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / n as u32);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of iterations per measurement (capped by the
    /// `CRITERION_SAMPLES` environment default to stay fast offline).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: samples().min(self.sample_size.max(1)),
            mean: None,
        };
        routine(&mut bencher, input);
        report(&self.name, &id.label, bencher.mean);
        self
    }

    /// Benchmarks a routine with no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: samples().min(self.sample_size.max(1)),
            mean: None,
        };
        routine(&mut bencher);
        report(&self.name, &id.label, bencher.mean);
        self
    }

    /// Ends the group (provided for API compatibility).
    pub fn finish(self) {}
}

fn report(group: &str, label: &str, mean: Option<Duration>) {
    match mean {
        Some(d) => println!("{group}/{label}: {d:?} (mean, offline criterion stand-in)"),
        None => println!("{group}/{label}: no measurement recorded"),
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: samples(),
            _criterion: self,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: samples(),
            mean: None,
        };
        routine(&mut bencher);
        report("bench", name, bencher.mean);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_mean() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
