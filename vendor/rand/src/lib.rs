//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this vendored crate implements exactly the API surface the workspace
//! uses: [`rngs::StdRng`] (a deterministic xoshiro256++ generator seeded via
//! SplitMix64), [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait
//! (`gen_bool`, `gen_range`) and [`SliceRandom::choose`].
//!
//! Determinism is the only contract the workspace relies on: a fixed seed
//! must yield a fixed stream (benchmark generation and the enumeration
//! baseline both advertise reproducibility).  Statistical quality beyond
//! that is best-effort; do not use this crate for anything
//! security-sensitive.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (taken from the high half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.  Equal seeds yield equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ with SplitMix64
    /// seed expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A type from which a uniform sample can be drawn (integer ranges).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods every [`RngCore`] gets for free.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        // 53 uniform mantissa bits, exactly like rand's canonical float path
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Draws a uniform sample from an integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random selection from slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// A uniformly random element, or `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let idx = (rng.next_u64() % self.len() as u64) as usize;
            Some(&self[idx])
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(1..=3);
            assert!((1..=3).contains(&x));
            let y: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(7);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert_eq!(seen, [true, true, true]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
