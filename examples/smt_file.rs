//! Solve an SMT-LIB-flavoured problem, either from a file given on the
//! command line or from a built-in example.
//!
//! Run with `cargo run --release --example smt_file -- [path.smt2]`.

use posr_core::solver::{answer_status, StringSolver};
use posr_smtfmt::parse_script;

const BUILT_IN: &str = r#"
(set-logic QF_S)
(declare-const x String)
(declare-const y String)
(assert (str.in_re x (re.* (str.to_re "ab"))))
(assert (str.in_re y (re.* (str.to_re "ba"))))
(assert (not (= x y)))
(assert (= (str.len x) (str.len y)))
(check-sat)
"#;

fn main() {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => BUILT_IN.to_string(),
    };
    let script = match parse_script(&source) {
        Ok(script) => script,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "parsed {} assertions over {} string and {} integer variables",
        script.formula.atoms.len(),
        script.string_vars.len(),
        script.int_vars.len()
    );
    let answer = StringSolver::new().solve(&script.formula);
    println!("{}", answer_status(&answer));
    if let Some(model) = answer.model() {
        for var in &script.string_vars {
            println!("  {var} = {:?}", model.string(var));
        }
        for var in &script.int_vars {
            println!("  {var} = {}", model.int(var));
        }
    }
}
