//! Solve an SMT-LIB-flavoured problem, either from a file given on the
//! command line or from a built-in example.
//!
//! Run with `cargo run --release --example smt_file -- [path.smt2]`.
//!
//! Scripts run as a command stream: `(push)`/`(pop)`, multiple
//! `(check-sat)`, `(get-model)`, `(get-unsat-core)`, `(get-proof)`,
//! `(get-info :all-statistics)` and `(set-option :verbosity 1)` all work,
//! and responses print the way an SMT-LIB solver would print them.

use posr_smtfmt::run_script;

const BUILT_IN: &str = r#"
(set-logic QF_S)
(declare-const x String)
(declare-const y String)
(assert (str.in_re x (re.* (str.to_re "ab"))))
(assert (str.in_re y (re.* (str.to_re "ba"))))
(assert (not (= x y)))
(assert (= (str.len x) (str.len y)))
(check-sat)
(get-model)
"#;

fn main() {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => BUILT_IN.to_string(),
    };
    match run_script(&source) {
        Ok(outcome) => print!("{}", outcome.render()),
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    }
}
