//! The position-hard scenario from the paper's evaluation: primitiveness-style
//! constraints combining disequalities and ¬contains over flat languages —
//! the instances that only the position-aware procedure solves.
//!
//! Run with `cargo run --release --example primitive_words`.

use posr_core::ast::{StringFormula, StringTerm};
use posr_core::baselines::{BaselineSolver, EnumerationSolver};
use posr_core::solver::{answer_status, StringSolver};
use posr_core::CancelToken;

fn main() {
    let x = StringTerm::var("x");
    let y = StringTerm::var("y");

    // xy ≠ yx over commuting languages is unsatisfiable …
    let commuting = StringFormula::new()
        .in_re("x", "a*")
        .in_re("y", "a*")
        .diseq(
            StringTerm::concat(vec![x.clone(), y.clone()]),
            StringTerm::concat(vec![y.clone(), x.clone()]),
        );
    println!(
        "xy ≠ yx over a*           : {}",
        answer_status(&StringSolver::new().solve(&commuting))
    );
    println!(
        "  (enumeration baseline    : {})",
        answer_status(&EnumerationSolver::default().solve(&commuting, &CancelToken::none()))
    );

    // … but satisfiable once the languages stop commuting.
    let non_commuting = StringFormula::new()
        .in_re("x", "(ab)*")
        .in_re("y", "(ba)*")
        .diseq(
            StringTerm::concat(vec![x.clone(), y.clone()]),
            StringTerm::concat(vec![y.clone(), x.clone()]),
        );
    let answer = StringSolver::new().solve(&non_commuting);
    println!("xy ≠ yx over (ab)*, (ba)* : {}", answer_status(&answer));
    if let Some(model) = answer.model() {
        println!("  x = {:?}, y = {:?}", model.string("x"), model.string("y"));
    }

    // ¬contains(xx, x) is unsatisfiable for every x — a ¬contains instance no
    // enumeration-based solver can refute.
    let contains = StringFormula::new()
        .in_re("x", "(ab)*")
        .not_contains(StringTerm::concat(vec![x.clone(), x.clone()]), x.clone());
    println!(
        "¬contains(xx, x)          : {}",
        answer_status(&StringSolver::new().solve(&contains))
    );

    // ¬contains(y, x) over flat languages, decided by the instantiation loop.
    let hard = StringFormula::new()
        .in_re("x", "(ab)+")
        .in_re("y", "(ba)+")
        .not_contains(y.clone(), x.clone());
    let answer = StringSolver::new().solve(&hard);
    println!("¬contains(y, x) flat       : {}", answer_status(&answer));
    if let Some(model) = answer.model() {
        println!("  x = {:?}, y = {:?}", model.string("x"), model.string("y"));
    }
}
