//! Quickstart: build a position-heavy string constraint with the builder API
//! and solve it with the posr pipeline.
//!
//! Run with `cargo run --release --example quickstart`.

use posr_core::ast::{StringFormula, StringTerm};
use posr_core::solver::{answer_status, StringSolver};

fn main() {
    // x ∈ (ab)*, y ∈ (ba)*, x ≠ y, and both must have the same length: the
    // classic "else branch of a string equality test" constraint.
    let formula = StringFormula::new()
        .in_re("x", "(ab)*")
        .in_re("y", "(ba)*")
        .diseq(StringTerm::var("x"), StringTerm::var("y"))
        .len_eq("x", "y");

    let answer = StringSolver::new().solve(&formula);
    println!("status: {}", answer_status(&answer));
    if let Some(model) = answer.model() {
        println!("  x = {:?}", model.string("x"));
        println!("  y = {:?}", model.string("y"));
        assert!(model.satisfies(&formula), "models are always re-validated");
    }

    // The same constraint over the singleton language {"ab"} is unsatisfiable.
    let unsat = StringFormula::new()
        .in_re("x", "ab")
        .in_re("y", "ab")
        .diseq(StringTerm::var("x"), StringTerm::var("y"));
    println!(
        "singleton variant: {}",
        answer_status(&StringSolver::new().solve(&unsat))
    );
}
