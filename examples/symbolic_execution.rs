//! A symbolic-execution style scenario: path constraints collected along a
//! program path that validates a user name, with the else-branches of string
//! equality tests showing up as disequalities.
//!
//! Run with `cargo run --release --example symbolic_execution`.

use posr_core::ast::{LenCmp, LenTerm, StringFormula, StringTerm};
use posr_core::solver::{answer_status, StringSolver};

fn main() {
    // username = prefix · suffix, where the prefix is a known literal branch,
    // the whole name matches a sanitising regex, the name is not one of the
    // reserved words, and it is at least 4 characters long.
    let formula = StringFormula::new()
        .in_re("username", "[a-z]{0,6}")
        .eq(
            StringTerm::var("username"),
            StringTerm::concat(vec![StringTerm::var("prefix"), StringTerm::var("suffix")]),
        )
        .diseq(StringTerm::var("username"), StringTerm::lit("root"))
        .diseq(StringTerm::var("username"), StringTerm::lit("admin"))
        .not_prefixof(StringTerm::lit("sys"), StringTerm::var("username"))
        .length(LenTerm::len("username"), LenCmp::Ge, LenTerm::constant(4));

    let answer = StringSolver::new().solve(&formula);
    println!("path condition is {}", answer_status(&answer));
    if let Some(model) = answer.model() {
        println!("  username = {:?}", model.string("username"));
        println!("  prefix   = {:?}", model.string("prefix"));
        println!("  suffix   = {:?}", model.string("suffix"));
    }

    // Tightening the constraints to force the reserved word makes the branch dead.
    let dead = StringFormula::new()
        .in_re("username", "root")
        .diseq(StringTerm::var("username"), StringTerm::lit("root"));
    println!(
        "dead branch check: {}",
        answer_status(&StringSolver::new().solve(&dead))
    );
}
