//! Walkthrough of the incremental solving layer, bottom to top:
//!
//! 1. a persistent LIA session (`posr_lia::incremental`) — assert, push,
//!    pop, assumption solving, learned-clause retention visible in the
//!    engine counters;
//! 2. a string-level session (`posr_core::session::SolverSession`) with an
//!    assertion stack over the full pipeline;
//! 3. an SMT-LIB command stream with multiple `(check-sat)`s executed by
//!    `posr_smtfmt::run_script`.
//!
//! Run with `cargo run --release --example incremental`.

use posr_core::ast::{StringAtom, StringTerm};
use posr_core::session::SolverSession;
use posr_lia::formula::Formula;
use posr_lia::incremental::IncrementalSolver;
use posr_lia::term::{LinExpr, VarPool};
use posr_smtfmt::run_script;

fn main() {
    lia_session();
    string_session();
    smtlib_script();
}

fn lia_session() {
    println!("== 1. persistent LIA session ==");
    let mut pool = VarPool::new();
    let x = pool.fresh("x");
    let y = pool.fresh("y");

    let mut solver = IncrementalSolver::new();
    solver.assert_formula(&Formula::and(vec![
        Formula::ge(LinExpr::var(x), LinExpr::constant(0)),
        Formula::eq(LinExpr::var(x) + LinExpr::var(y), LinExpr::constant(10)),
    ]));
    println!("  base:                     {:?}", kind(&solver.solve()));

    solver.push();
    solver.assert_formula(&Formula::ge(LinExpr::var(x), LinExpr::constant(11)));
    // y = 10 - x ≤ -1 … conjoined with a pushed y ≥ 0 this is unsat
    solver.assert_formula(&Formula::ge(LinExpr::var(y), LinExpr::constant(0)));
    println!("  push; x ≥ 11 ∧ y ≥ 0:     {:?}", kind(&solver.solve()));

    solver.pop();
    println!("  pop:                      {:?}", kind(&solver.solve()));

    // assumption solving: scoped queries without touching the stack
    let assume = solver.literal(&Formula::le(LinExpr::var(x), LinExpr::constant(-1)));
    if let posr_lia::LitOrConst::Lit(lit) = assume {
        println!(
            "  assuming x ≤ -1:          {:?}",
            kind(&solver.solve_under_assumptions(&[lit]))
        );
        println!("  without the assumption:   {:?}", kind(&solver.solve()));
    }

    let stats = solver.stats();
    println!(
        "  session counters: {} conflicts, {} decisions, {} propagations, {} learned ({} live)",
        stats.conflicts,
        stats.decisions,
        stats.propagations,
        stats.learned_total,
        stats.learned_live,
    );
    println!();
}

fn string_session() {
    println!("== 2. string-level session ==");
    let mut session = SolverSession::new();
    session.assert(StringAtom::InRe {
        var: "x".to_string(),
        regex: "(ab)*".to_string(),
        negated: false,
    });
    session.assert(StringAtom::InRe {
        var: "y".to_string(),
        regex: "(ab)*".to_string(),
        negated: false,
    });
    println!(
        "  x, y ∈ (ab)*:             {:?}",
        kind2(&session.check_sat())
    );

    session.push(1);
    session.assert(StringAtom::Equation {
        lhs: StringTerm::var("x"),
        rhs: StringTerm::var("y"),
        negated: true,
    });
    session.assert(StringAtom::Length {
        lhs: posr_core::ast::LenTerm::len("x"),
        cmp: posr_core::ast::LenCmp::Eq,
        rhs: posr_core::ast::LenTerm::len("y"),
    });
    // equal-length (ab)* words are equal: the pushed frame flips the verdict
    println!(
        "  push; x ≠ y ∧ |x| = |y|:  {:?}",
        kind2(&session.check_sat())
    );

    session.pop(1);
    println!(
        "  pop:                      {:?}",
        kind2(&session.check_sat())
    );
    println!();
}

fn smtlib_script() {
    println!("== 3. SMT-LIB command stream ==");
    let script = r#"
      (declare-const x String)
      (assert (str.in_re x (re.* (str.to_re "ab"))))
      (check-sat)
      (push 1)
      (assert (not (= x "")))
      (assert (<= (str.len x) 2))
      (check-sat)
      (get-model)
      (pop 1)
      (check-sat)
    "#;
    match run_script(script) {
        Ok(outcome) => {
            println!("  statuses: {:?}", outcome.statuses());
            print!("{}", indent(&outcome.render()));
        }
        Err(e) => println!("  script error: {e}"),
    }
}

fn kind(result: &posr_lia::SolverResult) -> &'static str {
    match result {
        posr_lia::SolverResult::Sat(_) => "sat",
        posr_lia::SolverResult::Unsat => "unsat",
        posr_lia::SolverResult::Unknown(_) => "unknown",
    }
}

fn kind2(answer: &posr_core::Answer) -> &'static str {
    posr_core::solver::answer_status(answer)
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}
