//! End-to-end portfolio demo: solves a generated multi-family batch both
//! sequentially (the paper's pipeline, one problem at a time) and through
//! the concurrent portfolio batch driver, then compares verdicts and
//! wall-clock time.
//!
//! Run with `cargo run --release --example portfolio -- [--count N] [--timeout-ms MS] [--stats]`.
//!
//! `--stats` prints the process-wide cumulative CDCL(T) engine counters
//! (conflicts, decisions, propagations, restarts, learned clauses, GC) at
//! the end — every engine across both drivers flushes into them — plus
//! the unified `posr-obs` report: per-lane solve time, the phase
//! self-time table, the automaton-cache hit ratio, and the robustness
//! counters (absorbed lane crashes, cache poison recoveries, injected
//! faults, big-rational slow-lane trips).  `POSR_TRACE` /
//! `POSR_TRACE_FOLDED` additionally export the run as a Chrome trace /
//! folded-stack profile.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use posr_bench::{suite, suite_names};
use posr_core::solver::{answer_status, SolverOptions, StringSolver};
use posr_portfolio::{solve_batch, BatchItem, BatchOptions, PortfolioSolver};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let count = get("--count", 25) as usize;
    let timeout = Duration::from_millis(get("--timeout-ms", 5000));
    let show_stats = args.iter().any(|a| a == "--stats");

    posr_obs::init_from_env();
    if show_stats {
        // the unified report is built from recorded spans
        posr_obs::set_enabled(true);
    }
    posr_obs::set_thread_track("portfolio-example");

    // the four benchmark families of the paper's evaluation, `count` each
    let mut items = Vec::new();
    for family in suite_names() {
        for instance in suite(family, count, 2025) {
            items.push(BatchItem::new(instance.name, instance.formula));
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "batch: {} problems, per-problem timeout {timeout:?}, {cores} core(s)",
        items.len()
    );
    if cores < 2 {
        println!("note: racing strategies needs multiple cores to beat the sequential loop");
    }

    // sequential reference: the paper's pipeline, one problem at a time
    let sequential_start = Instant::now();
    let mut sequential_status = Vec::with_capacity(items.len());
    for item in &items {
        let options = SolverOptions {
            deadline: Some(Instant::now() + timeout),
            ..SolverOptions::default()
        };
        let answer = StringSolver::with_options(options).solve(&item.formula);
        sequential_status.push(answer_status(&answer));
    }
    let sequential_time = sequential_start.elapsed();

    // concurrent portfolio batch
    let portfolio = PortfolioSolver::new();
    let options = BatchOptions {
        workers: 0,
        timeout: Some(timeout),
    };
    let report = solve_batch(&items, &portfolio, &options);

    // verdict comparison: a definite answer may never contradict the other
    // engine; unknowns may flip either way (different resource limits)
    let mut agreements = 0usize;
    let mut contradictions = Vec::new();
    let mut portfolio_decided_more = 0usize;
    for (outcome, seq) in report.outcomes.iter().zip(&sequential_status) {
        let par = outcome.status();
        match (par, *seq) {
            ("sat", "unsat") | ("unsat", "sat") => contradictions.push(outcome.name.clone()),
            (p, s) if p == s => agreements += 1,
            ("sat" | "unsat", "unknown") => portfolio_decided_more += 1,
            _ => {}
        }
    }

    println!("\n== verdicts ==");
    println!("  agree: {agreements}/{}", report.outcomes.len());
    println!("  portfolio decided where sequential gave up: {portfolio_decided_more}");
    if contradictions.is_empty() {
        println!("  contradictions: none");
    } else {
        println!("  CONTRADICTIONS (soundness bug!): {contradictions:?}");
        std::process::exit(1);
    }

    println!("\n== timing ==");
    println!("  sequential loop : {sequential_time:?}");
    println!("  portfolio batch : {:?} wall", report.stats.wall_time);
    println!(
        "  batch speedup   : {:.2}x over its own summed race time, {:.2}x over the sequential loop",
        report.stats.speedup(),
        sequential_time.as_secs_f64() / report.stats.wall_time.as_secs_f64()
    );

    println!("\n== portfolio ==");
    println!(
        "  verdicts: {} sat / {} unsat / {} unknown",
        report.stats.sat, report.stats.unsat, report.stats.unknown
    );
    for (strategy, wins) in &report.stats.wins {
        println!("  wins[{strategy}] = {wins}");
    }
    println!(
        "  automaton cache: {} hits / {} misses ({:.0}% reuse)",
        report.stats.cache_hits,
        report.stats.cache_misses,
        100.0 * report.stats.cache_hits as f64
            / (report.stats.cache_hits + report.stats.cache_misses).max(1) as f64
    );
    println!(
        "  crashed lanes: {} absorbed, {} items retried",
        report.stats.crashed, report.stats.retried
    );

    if show_stats {
        let s = posr_lia::global_stats();
        println!("\n== cdcl engine (cumulative, all lanes) ==");
        println!("  conflicts    : {}", s.conflicts);
        println!("  decisions    : {}", s.decisions);
        println!("  propagations : {}", s.propagations);
        println!("  restarts     : {}", s.restarts);
        println!(
            "  learned      : {} total, {} dropped by GC",
            s.learned_total, s.gc_dropped
        );
        println!(
            "  theory checks: {} bound / {} gcd / {} simplex / {} final",
            s.bound_checks, s.gcd_checks, s.simplex_checks, s.final_checks
        );
        println!(
            "  theory props : {} literals enqueued, {} simplex pivots",
            s.theory_props, s.simplex_pivots
        );

        let tracks = posr_obs::snapshot_tracks();
        // per-lane busy time: threaded lanes record `lane.solve` on their
        // own `lane:*` track; the single-core sequential fallback records
        // `slice:*` spans on the worker's track instead
        let mut lane_busy: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for track in &tracks {
            for phase in posr_obs::phase_totals(std::slice::from_ref(track)) {
                let lane = if phase.name == "lane.solve" {
                    track.track.strip_prefix("lane:")
                } else {
                    phase.name.strip_prefix("slice:")
                };
                if let Some(lane) = lane {
                    let entry = lane_busy.entry(lane.to_string()).or_default();
                    entry.0 += phase.count;
                    entry.1 += phase.total_us;
                }
            }
        }
        println!("\n== lanes (posr-obs) ==");
        for (lane, (solves, busy_us)) in &lane_busy {
            println!(
                "  {lane:<20} {solves:>5} solves, {:>10.2} ms busy",
                *busy_us as f64 / 1e3
            );
        }
        println!("\n== robustness (posr-obs) ==");
        for name in [
            "portfolio.lane_crashes",
            "cache.poison_recovered",
            "fault.injected",
            "lia.rat.slow_lane",
        ] {
            println!("  {name:<24} : {}", posr_obs::counter(name).value());
        }

        let cache = posr_automata::cache::stats();
        match cache.hit_ratio() {
            Some(ratio) => println!(
                "  automaton cache (process-wide): {:.0}% of {} lookups hit",
                ratio * 100.0,
                cache.lookups()
            ),
            None => println!("  automaton cache (process-wide): no lookups"),
        }

        // flight-recorder percentiles: the batch's own item-wall
        // distribution (scoped to this batch) plus every process-wide
        // latency histogram the stack recorded (lane walls, CEGAR rounds,
        // simplex pivot counts, clause LBDs)
        println!("\n== latency percentiles (posr-obs) ==");
        if let Some(hist) = &report.stats.item_wall_us {
            println!(
                "  batch item wall      : p50 {:>8.2} ms, p90 {:>8.2} ms, p99 {:>8.2} ms, max {:>8.2} ms ({} items)",
                hist.p50() as f64 / 1e3,
                hist.p90() as f64 / 1e3,
                hist.p99() as f64 / 1e3,
                hist.max as f64 / 1e3,
                hist.count,
            );
        }
        for hist in posr_obs::histograms_snapshot() {
            println!(
                "  {:<20} : p50 {:>8} p90 {:>8} p99 {:>8} max {:>8} ({} samples)",
                hist.name,
                hist.p50(),
                hist.p90(),
                hist.p99(),
                hist.max,
                hist.count,
            );
        }

        println!("\n== phase self-time (posr-obs) ==");
        let report = posr_obs::SolveReport::from_tracks("portfolio-batch", &tracks);
        for line in report.table().lines().take(16) {
            println!("  {line}");
        }
    }

    match posr_obs::flush_env_trace() {
        Ok(Some(path)) => println!("\nchrome trace written to {path}"),
        Ok(None) => {}
        Err(e) => eprintln!("could not write trace: {e}"),
    }
}
